"""Zero-dependency metrics + tracing for the inference stack.

Contract: every hot and failure path in the pipeline reports *what it
did* — batch sizes, dedup/cache hit rates, per-phase wall/CPU time,
vote margins, failure counts — into one process-global
:class:`MetricsRegistry`, cheaply enough that instrumentation stays on
in production (< 5% overhead on the engine hot paths; enforced by
``benchmarks/bench_speed.py``).

Three metric kinds plus spans, all thread-safe:

* :class:`Counter` — monotonically increasing int/float total
  (``registry.inc("engine.cache_hits", 3)``);
* :class:`Gauge` — last-written value (``registry.set_gauge``);
* :class:`Histogram` — fixed bucket boundaries chosen at creation;
  ``observe(v)`` bins the value and tracks count/sum/min/max.  Default
  boundary sets are provided for durations (:data:`TIME_BUCKETS`),
  batch sizes (:data:`SIZE_BUCKETS`) and vote margins
  (:data:`MARGIN_BUCKETS`);
* :func:`MetricsRegistry.span` — a nestable context manager recording
  wall-clock *and* CPU time per dotted call path.  Nested spans are
  recorded under ``"parent/child"`` names, so one aggregated dump reads
  like a flame graph: ``infer_binary/extract/locate``.  Times are
  inclusive of children.

The process-global registry is reachable through :func:`get_registry`,
with module-level conveniences (:func:`inc`, :func:`observe`,
:func:`span`, :func:`snapshot`) that no-op in nanoseconds when metrics
are disabled via :func:`set_enabled` (the global kill switch) — the
pipeline additionally honours ``CatiConfig.metrics_enabled`` at its own
call sites.  ``snapshot()`` returns a JSON-ready dict; ``render_text``
renders the same data as an aligned table for terminals.

See ``docs/OPERATIONS.md`` for the operator-facing story (what each
emitted metric means and how to read a dump).
"""

from __future__ import annotations

import json
import threading
import time
from bisect import bisect_right
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

#: Default histogram boundaries for durations, in seconds (log-spaced).
TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)

#: Default histogram boundaries for batch/window counts (powers of two).
SIZE_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

#: Default histogram boundaries for vote margins (summed clipped
#: confidence gap between the winning and runner-up leaf type).
MARGIN_BUCKETS: tuple[float, ...] = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


class Counter:
    """A thread-safe monotonically increasing total (int or float)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A thread-safe last-written value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Fixed-boundary histogram: ``counts[i]`` holds values ``<= boundaries[i]``,
    with one overflow bucket at the end; also tracks count/sum/min/max."""

    __slots__ = ("name", "boundaries", "counts", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str, boundaries: Sequence[float] = TIME_BUCKETS) -> None:
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be a non-empty sorted sequence")
        self.name = name
        self.boundaries = tuple(float(b) for b in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_right(self.boundaries, value)
        # bisect_right puts a value equal to a boundary in the *next*
        # bucket; pull exact boundary hits back so counts[i] really means
        # "<= boundaries[i]".
        if index and self.boundaries[index - 1] == value:
            index -= 1
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Bin a whole batch under one lock acquisition.

        The per-value cost is one C-level ``bisect`` plus a list
        increment, which is what keeps per-variable vote metrics inside
        the <5% instrumentation budget on large batches.
        """
        if hasattr(values, "tolist"):  # numpy array without importing numpy
            values = values.tolist()
        if not values:
            return
        boundaries = self.boundaries
        with self._lock:
            counts = self.counts
            for value in values:
                value = float(value)
                index = bisect_right(boundaries, value)
                if index and boundaries[index - 1] == value:
                    index -= 1
                counts[index] += 1
            self.count += len(values)
            self.sum += sum(values)
            low, high = min(values), max(values)
            if low < self.min:
                self.min = low
            if high > self.max:
                self.max = high

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the containing bucket, clamped to
        the observed min/max so a coarse bucketing cannot report a
        quantile outside the data.  ``None`` when nothing was observed.
        This is what ``/healthz`` and the serve benchmark use for
        p50/p99 latency without keeping raw samples.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self.count:
                return None
            rank = q * self.count
            seen = 0
            for index, bucket in enumerate(self.counts):
                if not bucket:
                    continue
                if seen + bucket >= rank:
                    lower = self.boundaries[index - 1] if index else self.min
                    upper = (self.boundaries[index]
                             if index < len(self.boundaries) else self.max)
                    fraction = (rank - seen) / bucket
                    value = lower + (upper - lower) * fraction
                    return min(max(value, self.min), self.max)
                seen += bucket
            return self.max

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "boundaries": list(self.boundaries),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.sum,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "mean": self.sum / self.count if self.count else None,
            }


class SpanStat:
    """Aggregated timings for one span path (inclusive of children)."""

    __slots__ = ("name", "count", "wall_s", "cpu_s", "min_s", "max_s", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self._lock = threading.Lock()

    def record(self, wall_s: float, cpu_s: float) -> None:
        with self._lock:
            self.count += 1
            self.wall_s += wall_s
            self.cpu_s += cpu_s
            if wall_s < self.min_s:
                self.min_s = wall_s
            if wall_s > self.max_s:
                self.max_s = wall_s

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "wall_s": self.wall_s,
                "cpu_s": self.cpu_s,
                "min_s": self.min_s if self.count else None,
                "max_s": self.max_s if self.count else None,
            }


class MetricsRegistry:
    """Thread-safe named metric store with JSON/text renderers.

    Metrics are created lazily on first use; creation takes the registry
    lock, increments take only the metric's own lock.  ``enabled=False``
    turns every module-level helper into a near-free no-op (the flag is
    checked before any allocation happens).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, SpanStat] = {}
        self._span_stack = threading.local()

    # -- creation / lookup -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(name, Counter(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(name, Gauge(name))
        return metric

    def histogram(self, name: str, boundaries: Sequence[float] = TIME_BUCKETS) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(name, Histogram(name, boundaries))
        return metric

    # -- recording ---------------------------------------------------------------

    def inc(self, name: str, amount: float = 1) -> None:
        if self.enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                boundaries: Sequence[float] = TIME_BUCKETS) -> None:
        if self.enabled:
            self.histogram(name, boundaries).observe(value)

    def observe_many(self, name: str, values: Sequence[float],
                     boundaries: Sequence[float] = TIME_BUCKETS) -> None:
        if self.enabled:
            self.histogram(name, boundaries).observe_many(values)

    def _span_path(self, name: str) -> str:
        stack = getattr(self._span_stack, "stack", None)
        if stack is None:
            stack = self._span_stack.stack = []
        return "/".join(stack + [name]) if stack else name

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block under ``name`` (nested spans get ``parent/child``)."""
        if not self.enabled:
            yield
            return
        path = self._span_path(name)
        stack = self._span_stack.stack
        stack.append(name)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall0
            cpu = time.process_time() - cpu0
            stack.pop()
            stat = self._spans.get(path)
            if stat is None:
                with self._lock:
                    stat = self._spans.setdefault(path, SpanStat(path))
            stat.record(wall, cpu)

    # -- lifecycle ---------------------------------------------------------------

    def reset(self) -> None:
        """Drop every recorded metric (names included)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()

    # -- rendering ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready dump of everything recorded so far."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            spans = dict(self._spans)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.to_dict() for name, h in sorted(histograms.items())},
            "spans": {name: s.to_dict() for name, s in sorted(spans.items())},
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    def render_text(self) -> str:
        """The snapshot as an aligned, human-readable report."""
        snap = self.snapshot()
        lines: list[str] = []
        if snap["counters"]:
            lines.append("== counters ==")
            width = max(len(name) for name in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name:<{width}}  {value:g}")
        if snap["gauges"]:
            lines.append("== gauges ==")
            width = max(len(name) for name in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name:<{width}}  {value:g}")
        if snap["spans"]:
            lines.append("== spans (wall / cpu, inclusive) ==")
            width = max(len(name) for name in snap["spans"])
            for name, stat in snap["spans"].items():
                lines.append(
                    f"  {name:<{width}}  n={stat['count']:<6d} "
                    f"wall={stat['wall_s'] * 1e3:9.2f} ms  "
                    f"cpu={stat['cpu_s'] * 1e3:9.2f} ms")
        if snap["histograms"]:
            lines.append("== histograms ==")
            for name, hist in snap["histograms"].items():
                mean = hist["mean"]
                lines.append(
                    f"  {name}: n={hist['count']} sum={hist['sum']:g}"
                    + (f" mean={mean:g} min={hist['min']:g} max={hist['max']:g}"
                       if hist["count"] else ""))
                if hist["count"]:
                    buckets = [f"<={b:g}:{c}" for b, c in
                               zip(hist["boundaries"], hist["counts"]) if c]
                    if hist["counts"][-1]:
                        buckets.append(f">{hist['boundaries'][-1]:g}:{hist['counts'][-1]}")
                    lines.append("    " + " ".join(buckets))
        return "\n".join(lines) if lines else "(no metrics recorded)"


# -- snapshot merging (multi-worker serving) -----------------------------------
#
# The pre-fork router (repro.serve.router) aggregates one snapshot per
# worker *process* into a single /metricsz view.  Merging operates on
# the JSON-ready dicts produced by MetricsRegistry.snapshot(), not on
# live registries, because worker snapshots arrive over HTTP.


def merge_histogram_dicts(dicts: Sequence[dict]) -> dict:
    """Bucket-wise merge of :meth:`Histogram.to_dict` outputs.

    Histograms with identical boundaries merge exactly (counts added
    per bucket); a histogram whose boundaries disagree with the first
    one still contributes its count/sum/min/max but its bucket counts
    are folded in by re-binning each boundary's tally at the boundary
    value — an upper-bound placement, which keeps quantile estimates
    conservative rather than silently dropping a worker.
    """
    merged: dict | None = None
    for data in dicts:
        if not data:
            continue
        if merged is None:
            merged = {
                "boundaries": list(data["boundaries"]),
                "counts": list(data["counts"]),
                "count": data["count"],
                "sum": data["sum"],
                "min": data["min"],
                "max": data["max"],
            }
            continue
        merged["count"] += data["count"]
        merged["sum"] += data["sum"]
        for key, pick in (("min", min), ("max", max)):
            ours, theirs = merged[key], data[key]
            if theirs is not None:
                merged[key] = pick(ours, theirs) if ours is not None else theirs
        if list(data["boundaries"]) == merged["boundaries"]:
            merged["counts"] = [a + b for a, b in
                                zip(merged["counts"], data["counts"])]
        else:
            boundaries = merged["boundaries"]
            for boundary, tally in zip(data["boundaries"], data["counts"]):
                if not tally:
                    continue
                index = bisect_right(boundaries, boundary)
                if index and boundaries[index - 1] == boundary:
                    index -= 1
                merged["counts"][index] += tally
            merged["counts"][-1] += data["counts"][-1]
    if merged is None:
        return {}
    merged["mean"] = merged["sum"] / merged["count"] if merged["count"] else None
    return merged


def quantile_from_dict(data: dict, q: float) -> float | None:
    """:meth:`Histogram.quantile` over a (possibly merged) histogram dict."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if not data or not data.get("count"):
        return None
    boundaries = data["boundaries"]
    low = data["min"] if data["min"] is not None else boundaries[0]
    high = data["max"] if data["max"] is not None else boundaries[-1]
    rank = q * data["count"]
    seen = 0
    for index, bucket in enumerate(data["counts"]):
        if not bucket:
            continue
        if seen + bucket >= rank:
            lower = boundaries[index - 1] if index else low
            upper = boundaries[index] if index < len(boundaries) else high
            fraction = (rank - seen) / bucket
            value = lower + (upper - lower) * fraction
            return min(max(value, low), high)
        seen += bucket
    return high


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Merge :meth:`MetricsRegistry.snapshot` dicts across processes.

    Counters and span totals are summed (they are totals), histograms
    are bucket-wise merged via :func:`merge_histogram_dicts`, gauges
    take the max (a "worst across workers" read for depth/generation
    style values).  Snapshots missing a section are tolerated.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histogram_parts: dict[str, list[dict]] = {}
    spans: dict[str, dict] = {}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for name, value in (snap.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in (snap.get("gauges") or {}).items():
            gauges[name] = max(gauges[name], value) if name in gauges else value
        for name, data in (snap.get("histograms") or {}).items():
            histogram_parts.setdefault(name, []).append(data)
        for name, data in (snap.get("spans") or {}).items():
            if name not in spans:
                spans[name] = {"count": 0, "wall_s": 0.0, "cpu_s": 0.0,
                               "min_s": None, "max_s": None}
            out = spans[name]
            out["count"] += data.get("count", 0)
            out["wall_s"] += data.get("wall_s", 0.0)
            out["cpu_s"] += data.get("cpu_s", 0.0)
            for key, pick in (("min_s", min), ("max_s", max)):
                theirs = data.get(key)
                if theirs is not None:
                    out[key] = (pick(out[key], theirs)
                                if out[key] is not None else theirs)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {name: merge_histogram_dicts(parts)
                       for name, parts in sorted(histogram_parts.items())},
        "spans": dict(sorted(spans.items())),
    }


#: The process-global registry every pipeline module records into.
_REGISTRY = MetricsRegistry(enabled=True)


def get_registry() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _REGISTRY


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable recording (the kill switch)."""
    _REGISTRY.enabled = enabled


def is_enabled() -> bool:
    return _REGISTRY.enabled


def inc(name: str, amount: float = 1) -> None:
    _REGISTRY.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    _REGISTRY.set_gauge(name, value)


def observe(name: str, value: float, boundaries: Sequence[float] = TIME_BUCKETS) -> None:
    _REGISTRY.observe(name, value, boundaries)


def span(name: str):
    """Module-level convenience for ``get_registry().span(name)``."""
    return _REGISTRY.span(name)


def snapshot() -> dict:
    return _REGISTRY.snapshot()


def reset() -> None:
    _REGISTRY.reset()
