"""The 19-type taxonomy CATI infers, and the multi-stage routing tree.

The paper (Fig. 5, §V-A) classifies every variable into one of 19 leaf
types: all C99 non-pointer base types except ``union`` (16 of them,
including ``struct`` and ``enum``) plus three pointer kinds —
``void*``, ``struct*`` and *pointer to arithmetic* (any pointer whose
pointee is a base type; statically untraceable, hence clustered).

The classifier is a tree of six stages:

* Stage 1   — pointer vs non-pointer,
* Stage 2-1 — pointer kind: void* / struct* / arith*,
* Stage 2-2 — non-pointer coarse class: struct / bool / char / float / int,
* Stage 3-1 — char family: char / unsigned char,
* Stage 3-2 — float family: float / double / long double,
* Stage 3-3 — int family: the eight C99 int types plus enum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TypeName(enum.Enum):
    """The 19 leaf types CATI predicts (display strings match Table V)."""

    BOOL = "bool"
    STRUCT = "struct"
    CHAR = "char"
    UNSIGNED_CHAR = "unsigned char"
    FLOAT = "float"
    DOUBLE = "double"
    LONG_DOUBLE = "long double"
    ENUM = "enum"
    INT = "int"
    SHORT_INT = "short int"
    LONG_INT = "long int"
    LONG_LONG_INT = "long long int"
    UNSIGNED_INT = "unsigned int"
    SHORT_UNSIGNED_INT = "short unsigned int"
    LONG_UNSIGNED_INT = "long unsigned int"
    LONG_LONG_UNSIGNED_INT = "long long unsigned int"
    VOID_POINTER = "void*"
    STRUCT_POINTER = "struct*"
    ARITH_POINTER = "arith*"

    def __str__(self) -> str:
        return self.value


#: All 19 leaf types, in Table V's presentation order (pointers last).
ALL_TYPES: tuple[TypeName, ...] = (
    TypeName.BOOL,
    TypeName.STRUCT,
    TypeName.CHAR,
    TypeName.UNSIGNED_CHAR,
    TypeName.FLOAT,
    TypeName.DOUBLE,
    TypeName.LONG_DOUBLE,
    TypeName.ENUM,
    TypeName.INT,
    TypeName.SHORT_INT,
    TypeName.LONG_INT,
    TypeName.LONG_LONG_INT,
    TypeName.UNSIGNED_INT,
    TypeName.SHORT_UNSIGNED_INT,
    TypeName.LONG_UNSIGNED_INT,
    TypeName.LONG_LONG_UNSIGNED_INT,
    TypeName.VOID_POINTER,
    TypeName.STRUCT_POINTER,
    TypeName.ARITH_POINTER,
)

POINTER_TYPES = frozenset({
    TypeName.VOID_POINTER, TypeName.STRUCT_POINTER, TypeName.ARITH_POINTER,
})

CHAR_FAMILY = (TypeName.CHAR, TypeName.UNSIGNED_CHAR)

FLOAT_FAMILY = (TypeName.FLOAT, TypeName.DOUBLE, TypeName.LONG_DOUBLE)

INT_FAMILY = (
    TypeName.INT,
    TypeName.SHORT_INT,
    TypeName.LONG_INT,
    TypeName.LONG_LONG_INT,
    TypeName.UNSIGNED_INT,
    TypeName.SHORT_UNSIGNED_INT,
    TypeName.LONG_UNSIGNED_INT,
    TypeName.LONG_LONG_UNSIGNED_INT,
    TypeName.ENUM,
)


class Stage(enum.Enum):
    """The six classifier stages of Fig. 5."""

    STAGE1 = "Stage1"
    STAGE2_1 = "Stage2-1"
    STAGE2_2 = "Stage2-2"
    STAGE3_1 = "Stage3-1"
    STAGE3_2 = "Stage3-2"
    STAGE3_3 = "Stage3-3"

    def __str__(self) -> str:
        return self.value


ALL_STAGES: tuple[Stage, ...] = tuple(Stage)


@dataclass(frozen=True, slots=True)
class StageSpec:
    """One stage: its class labels and, per label, the follow-up stage.

    ``labels`` are strings (coarse class names or leaf type values);
    ``routes`` maps a label to the next :class:`Stage` or None for leaves.
    """

    stage: Stage
    labels: tuple[str, ...]
    routes: dict[str, "Stage | None"]

    def label_index(self, label: str) -> int:
        return self.labels.index(label)


def _leaf_labels(types: tuple[TypeName, ...]) -> tuple[str, ...]:
    return tuple(t.value for t in types)


STAGE_SPECS: dict[Stage, StageSpec] = {
    Stage.STAGE1: StageSpec(
        Stage.STAGE1,
        labels=("pointer", "non-pointer"),
        routes={"pointer": Stage.STAGE2_1, "non-pointer": Stage.STAGE2_2},
    ),
    Stage.STAGE2_1: StageSpec(
        Stage.STAGE2_1,
        labels=_leaf_labels((TypeName.VOID_POINTER, TypeName.STRUCT_POINTER, TypeName.ARITH_POINTER)),
        routes={"void*": None, "struct*": None, "arith*": None},
    ),
    Stage.STAGE2_2: StageSpec(
        Stage.STAGE2_2,
        labels=("struct", "bool", "char", "float", "int"),
        routes={
            "struct": None,
            "bool": None,
            "char": Stage.STAGE3_1,
            "float": Stage.STAGE3_2,
            "int": Stage.STAGE3_3,
        },
    ),
    Stage.STAGE3_1: StageSpec(
        Stage.STAGE3_1,
        labels=_leaf_labels(CHAR_FAMILY),
        routes={t.value: None for t in CHAR_FAMILY},
    ),
    Stage.STAGE3_2: StageSpec(
        Stage.STAGE3_2,
        labels=_leaf_labels(FLOAT_FAMILY),
        routes={t.value: None for t in FLOAT_FAMILY},
    ),
    Stage.STAGE3_3: StageSpec(
        Stage.STAGE3_3,
        labels=_leaf_labels(INT_FAMILY),
        routes={t.value: None for t in INT_FAMILY},
    ),
}


def stage_label(type_name: TypeName, stage: Stage) -> str | None:
    """The label ``type_name`` carries at ``stage``, or None if the type
    never reaches that stage.

    >>> stage_label(TypeName.DOUBLE, Stage.STAGE1)
    'non-pointer'
    >>> stage_label(TypeName.DOUBLE, Stage.STAGE2_2)
    'float'
    >>> stage_label(TypeName.DOUBLE, Stage.STAGE3_2)
    'double'
    >>> stage_label(TypeName.DOUBLE, Stage.STAGE2_1) is None
    True
    """
    path = stage_path(type_name)
    for path_stage, label in path:
        if path_stage is stage:
            return label
    return None


def stage_path(type_name: TypeName) -> tuple[tuple[Stage, str], ...]:
    """The (stage, label) decisions that route a leaf type down the tree.

    >>> stage_path(TypeName.STRUCT_POINTER)
    ((<Stage.STAGE1: 'Stage1'>, 'pointer'), (<Stage.STAGE2_1: 'Stage2-1'>, 'struct*'))
    """
    if type_name in POINTER_TYPES:
        return ((Stage.STAGE1, "pointer"), (Stage.STAGE2_1, type_name.value))
    path: list[tuple[Stage, str]] = [(Stage.STAGE1, "non-pointer")]
    if type_name in CHAR_FAMILY:
        path.append((Stage.STAGE2_2, "char"))
        path.append((Stage.STAGE3_1, type_name.value))
    elif type_name in FLOAT_FAMILY:
        path.append((Stage.STAGE2_2, "float"))
        path.append((Stage.STAGE3_2, type_name.value))
    elif type_name in INT_FAMILY:
        path.append((Stage.STAGE2_2, "int"))
        path.append((Stage.STAGE3_3, type_name.value))
    else:  # struct, bool terminate at Stage 2-2
        path.append((Stage.STAGE2_2, type_name.value))
    return tuple(path)


#: The 17 types of the DEBIN comparison task (§VII-B): struct, union, enum,
#: array, pointer, void, bool, char, short, int, long, long long, with
#: signed+unsigned for the last five.  We map our 19-type labels onto it.
DEBIN_TYPES: tuple[str, ...] = (
    "struct", "union", "enum", "array", "pointer", "void", "bool",
    "char", "unsigned char",
    "short", "unsigned short",
    "int", "unsigned int",
    "long", "unsigned long",
    "long long", "unsigned long long",
)

_TO_DEBIN: dict[TypeName, str] = {
    TypeName.BOOL: "bool",
    TypeName.STRUCT: "struct",
    TypeName.CHAR: "char",
    TypeName.UNSIGNED_CHAR: "unsigned char",
    TypeName.FLOAT: "int",          # DEBIN's task has no float rows; folded
    TypeName.DOUBLE: "int",
    TypeName.LONG_DOUBLE: "int",
    TypeName.ENUM: "enum",
    TypeName.INT: "int",
    TypeName.SHORT_INT: "short",
    TypeName.LONG_INT: "long",
    TypeName.LONG_LONG_INT: "long long",
    TypeName.UNSIGNED_INT: "unsigned int",
    TypeName.SHORT_UNSIGNED_INT: "unsigned short",
    TypeName.LONG_UNSIGNED_INT: "unsigned long",
    TypeName.LONG_LONG_UNSIGNED_INT: "unsigned long long",
    TypeName.VOID_POINTER: "pointer",
    TypeName.STRUCT_POINTER: "pointer",
    TypeName.ARITH_POINTER: "pointer",
}


def to_debin_label(type_name: TypeName) -> str:
    """Project a CATI leaf type onto the DEBIN 17-type label set."""
    return _TO_DEBIN[type_name]
