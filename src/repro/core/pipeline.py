"""The CATI facade: train on a labeled corpus, infer on stripped binaries.

``Cati.train`` fits the Word2Vec embedding and the six stage CNNs;
``Cati.predict_*`` expose VUC- and variable-granularity predictions; and
``Cati.infer_binary`` runs the full §V-B pipeline on a stripped binary:
disassemble → locate → extract VUCs → generalize → embed → classify →
vote.

The ``predict_*`` methods are the naive float64 reference path; the
deployment hot paths (``infer_binary`` and everything reachable through
:attr:`Cati.engine`) run on the batched, dedup-aware
:class:`repro.core.engine.InferenceEngine`, whose outputs are
equivalence-tested against the reference to ≤1e-6.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.artifacts import ModelBundle, provenance_from_training
from repro.core.errors import ArtifactError

from repro.codegen.binary import Binary
from repro.core.classifier import MultiStageClassifier
from repro.core.config import CatiConfig
from repro.core.types import ALL_TYPES, TypeName
from repro.core.voting import clip_confidences, observe_clipping, observe_votes, vote_margins
from repro.embedding.encoder import VucEncoder
from repro.embedding.vocab import Vocab
from repro.embedding.word2vec import Word2Vec
from repro.vuc.dataflow import VariableExtent
from repro.vuc.dataset import VucDataset
from repro.vuc.generalize import Tokens

if TYPE_CHECKING:
    from repro.core.engine import InferenceEngine, InferenceResult
    from repro.core.errors import FailureReport


@dataclass
class VariablePrediction:
    """One inferred variable: its id, winning type and vote detail."""

    variable_id: str
    predicted: TypeName
    n_vucs: int
    scores: np.ndarray  # summed clipped confidences per leaf type


def predictions_from_probs(
    probs: np.ndarray,
    variable_ids: list[str],
    threshold: float,
    metrics: bool = False,
    vote_detail: bool = True,
) -> list[VariablePrediction]:
    """Vote per variable over a flat [N, 19] leaf confidence matrix (eqs. 3-4).

    Shared by the naive path and the inference engine so both produce
    identical grouping order and identical summation order.  ``winner``
    is the argmax of the summed clipped scores, which is exactly
    eq. (4)'s :func:`~repro.core.voting.vote` over the same matrix.

    With ``metrics`` (callers pass ``CatiConfig.metrics_enabled``), clip
    counts and per-variable vote margins are recorded into the global
    registry; ``vote_detail`` adds the per-winning-leaf-type margin
    histograms.
    """
    n = len(variable_ids)
    group_of: dict[str, int] = {}
    gid = np.empty(n, dtype=np.int64)
    for index, variable_id in enumerate(variable_ids):
        gid[index] = group_of.setdefault(variable_id, len(group_of))
    if metrics:
        observe_clipping(probs, threshold)
    if not group_of:
        return []
    # One clip + one grouped reduction over the whole matrix instead of a
    # per-variable fancy-index/sum loop.  Extraction emits each
    # variable's VUCs contiguously, so the stable sort is usually a no-op
    # and reduceat sums each variable's rows in their original order.
    clipped = clip_confidences(probs, threshold)
    if np.all(gid[:-1] <= gid[1:]):
        ordered, sorted_gid = clipped, gid
    else:
        order = np.argsort(gid, kind="stable")
        ordered, sorted_gid = clipped[order], gid[order]
    starts = np.searchsorted(sorted_gid, np.arange(len(group_of)))
    scores = np.add.reduceat(ordered, starts, axis=0)
    counts = np.bincount(gid, minlength=len(group_of))
    winners = scores.argmax(axis=1)
    out = [
        VariablePrediction(
            variable_id=variable_id,
            predicted=ALL_TYPES[winners[g]],
            n_vucs=int(counts[g]),
            scores=scores[g],
        )
        for variable_id, g in group_of.items()
    ]
    if metrics:
        margins = vote_margins([p.scores for p in out])
        observe_votes(winners.tolist(), margins, counts.tolist(),
                      detail=vote_detail)
    return out


class Cati:
    """The end-to-end system of the paper."""

    def __init__(self, config: CatiConfig | None = None) -> None:
        self.config = config or CatiConfig()
        self.embedding: Word2Vec | None = None
        self.encoder: VucEncoder | None = None
        self.classifier = MultiStageClassifier(self.config)
        self._engine: InferenceEngine | None = None
        #: Train provenance stamped into saved bundles (who/when/on what).
        self.provenance: dict = {}
        #: True when :meth:`load` actually memory-mapped the payloads.
        self.mmap_active: bool = False

    # -- training ------------------------------------------------------------------

    def train(self, dataset: VucDataset, verbose: bool = False) -> "Cati":
        """Fit embedding + stage CNNs on a labeled VUC corpus."""
        if len(dataset) == 0:
            raise ValueError("cannot train on an empty dataset")
        sequences = [self._flatten(sample.tokens) for sample in dataset]
        vocab = Vocab.build(sequences, min_count=self.config.min_token_count)
        if verbose:
            print(f"[train] vocabulary: {len(vocab)} tokens over {len(sequences)} VUCs")
        self.embedding = Word2Vec(vocab, self.config.word2vec).train(sequences)
        self.encoder = VucEncoder(self.embedding)
        self._engine = None
        self.provenance = provenance_from_training(len(dataset), len(vocab))
        x = self.encoder.encode_batch([sample.tokens for sample in dataset])
        labels = [sample.label for sample in dataset]
        self.classifier.train(x, labels, verbose=verbose)
        return self

    @staticmethod
    def _flatten(tokens: tuple[Tokens, ...]) -> list[str]:
        return [token for triple in tokens for token in triple]

    def _require_trained(self) -> VucEncoder:
        if self.encoder is None or self.embedding is None:
            raise RuntimeError("Cati is not trained; call train() or load() first")
        return self.encoder

    @property
    def engine(self) -> "InferenceEngine":
        """The batched, dedup-aware inference engine over this model."""
        from repro.core.engine import InferenceEngine

        if self._engine is None:
            self._engine = InferenceEngine(
                self.classifier, self._require_trained(), self.config,
            )
        return self._engine

    # -- VUC-level prediction ----------------------------------------------------------

    def encode(self, windows: list[tuple[Tokens, ...]]) -> np.ndarray:
        return self._require_trained().encode_batch(windows, length=self.config.vuc_length)

    def predict_vuc_proba(self, windows: list[tuple[Tokens, ...]]) -> np.ndarray:
        """[N, 19] leaf confidence matrix for generalized VUC windows."""
        return self.classifier.leaf_proba(self.encode(windows))

    def predict_vucs(self, windows: list[tuple[Tokens, ...]]) -> list[TypeName]:
        probs = self.predict_vuc_proba(windows)
        return [ALL_TYPES[i] for i in probs.argmax(axis=1)]

    # -- variable-level prediction (voting) -----------------------------------------------

    def predict_variables(
        self,
        windows: list[tuple[Tokens, ...]],
        variable_ids: list[str],
    ) -> list[VariablePrediction]:
        """Vote per variable over its VUCs' leaf confidences (eqs. 3-4)."""
        if len(windows) != len(variable_ids):
            raise ValueError("windows and variable_ids must align")
        probs = self.predict_vuc_proba(windows)
        return predictions_from_probs(
            probs, variable_ids, self.config.confidence_threshold,
            metrics=self.config.metrics_enabled,
            vote_detail=self.config.metrics_vote_detail)

    # -- whole-binary inference --------------------------------------------------------------

    def infer_binary(
        self,
        stripped: Binary,
        extents_by_function: list[list[VariableExtent]],
        on_error: str = "raise",
        failures: "FailureReport | None" = None,
        structs: bool | None = None,
    ) -> "InferenceResult":
        """Full pipeline on a stripped binary with given variable locations.

        This is the deployment path of Fig. 3(e-f): takes ~the paper's
        "6 seconds per binary" stages (extraction + prediction + voting),
        and runs on the dedup-aware engine.

        ``on_error="skip"`` degrades per function instead of dying on
        the first undecodable one: the returned
        :class:`~repro.core.engine.InferenceResult` (a ``list`` of
        :class:`VariablePrediction`) carries a machine-readable
        ``failures`` report of everything skipped, plus a ``metrics``
        snapshot when ``CatiConfig.metrics_enabled``.

        ``structs`` (default :attr:`CatiConfig.posterior_enabled`) also
        runs the posterior struct-recovery stage and attaches recovered
        layouts to the result (see :mod:`repro.posterior`).
        """
        self._require_trained()
        return self.engine.infer_binary(
            stripped, extents_by_function, on_error=on_error, failures=failures,
            structs=structs)

    # -- persistence ------------------------------------------------------------------------------

    def save(self, directory: str) -> "ModelBundle":
        """Write a versioned, checksummed model bundle (atomic).

        The bundle's ``manifest.json`` freezes this Cati's full config,
        vocab size, per-file SHA-256 checksums, tensor shapes and train
        provenance; see :mod:`repro.core.artifacts`.
        """
        self._require_trained()
        assert self.embedding is not None  # narrowed by _require_trained
        return ModelBundle.save(
            directory,
            config=self.config,
            embedding=self.embedding,
            classifier=self.classifier,
            provenance=self.provenance,
        )

    @classmethod
    def load(cls, directory: str, config: CatiConfig | None = None,
             warm_start: bool = False, *, mmap: bool = False) -> "Cati":
        """Load a saved model, restoring its saved config.

        For a bundle directory the manifest's config snapshot is
        authoritative: with ``config=None`` it is restored verbatim, and
        an explicit ``config`` whose structural fields disagree raises
        :class:`~repro.core.errors.ConfigMismatchError` naming each
        mismatched field (see
        :data:`repro.core.artifacts.STRUCTURAL_FIELDS`).  Every payload
        is checksum-verified before its arrays are trusted.

        Pre-bundle (legacy) directories — bare ``word2vec.npz`` +
        ``stages/`` — still load, shaped by ``config`` exactly as
        before; ``python -m repro model migrate`` upgrades them.

        ``warm_start=True`` additionally compiles the inference
        engine's float32 kernels now, so the first ``infer_binary``
        call does not pay the compile latency.

        ``mmap=True`` loads bundle payloads through the shared ``.npy``
        mirror (:meth:`ModelBundle.load_shared`), keeping the embedding
        table a read-only memory map so N serving workers share one
        physical copy.  Legacy directories have no manifest to key the
        mirror and fall back to a regular load; check
        :attr:`mmap_active` for what actually happened.
        """
        mmap_active = False
        if ModelBundle.is_bundle(directory):
            bundle = ModelBundle.open(directory)
            resolved = bundle.resolve_config(config)
            cati = cls(resolved)
            cati.embedding = bundle.load_embedding(mmap=mmap)
            cati.encoder = VucEncoder(cati.embedding)
            cati.classifier.load_state(
                bundle.load_classifier_state(mmap=mmap),
                input_length=resolved.vuc_length,
                input_channels=resolved.instruction_dim,
            )
            cati.provenance = dict(bundle.manifest.get("provenance") or {})
            mmap_active = mmap
        elif ModelBundle.is_legacy(directory):
            cati = cls(config)
            cati.embedding = Word2Vec.load(os.path.join(directory, "word2vec.npz"))
            cati.encoder = VucEncoder(cati.embedding)
            cati.classifier.load(
                os.path.join(directory, "stages"),
                input_length=cati.config.vuc_length,
                input_channels=cati.config.instruction_dim,
            )
            cati.provenance = {"legacy_dir": str(directory)}
        else:
            raise ArtifactError(
                f"{directory} is neither a model bundle nor a legacy "
                "model directory", path=str(directory), stage="artifacts")
        cati._engine = None
        cati.mmap_active = mmap_active
        if warm_start:
            cati.engine.warm_start()
        return cati
