"""Configuration for the CATI pipeline.

Defaults follow the paper where it states values (window 10, token dim
32, confidence threshold 0.9, 2-layer 32-64 CNN); training-scale knobs
(epochs, FC width, corpus size) default to laptop scale.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.embedding.word2vec import Word2VecConfig


@dataclass
class CatiConfig:
    """All knobs of the system in one place."""

    window: int = 10                   # w: instructions before/after target
    token_dim: int = 32                # Word2Vec embedding length (§IV-C)
    confidence_threshold: float = 0.9  # eq. (3) clipping threshold
    conv_channels: tuple[int, int] = (32, 64)
    fc_width: int = 128                # paper: 1024 at 22M-VUC scale
    dropout: float = 0.3
    epochs: int = 12
    batch_size: int = 64
    learning_rate: float = 1e-3
    class_weighting: bool = True       # sqrt-inverse-frequency loss weights
    min_token_count: int = 2
    seed: int = 0
    max_batch: int = 1024              # engine: windows per dense inference chunk
    n_workers: int = 0                 # engine: processes for infer_binary_many (0/1 = serial)
    dedup_cache_size: int = 65536      # engine: cached leaf rows for repeated windows (0 = off)
    quantize_embeddings: bool = False  # engine: int8 embedding gather (trades exactness for speed)
    tool_timeout: float = 60.0         # toolchain: seconds per external tool run
    tool_retries: int = 2              # toolchain: retries after a transient tool failure
    job_timeout: float | None = None   # engine: seconds per infer_binary_many job (None = wait)
    metrics_enabled: bool = True       # observability: record pipeline metrics/spans
    metrics_vote_detail: bool = True   # observability: per-leaf-type vote-margin histograms
    serve_max_batch: int = 4096        # serve: max VUC windows coalesced per engine call
    serve_max_delay_ms: float = 5.0    # serve: max wait to coalesce concurrent requests
    serve_workers: int = 0             # serve: worker processes (0 = auto min(cores, 4); 1 = in-process daemon)
    posterior_enabled: bool = False    # posterior: recover struct layouts after per-variable voting
    posterior_min_accesses: int = 2    # posterior: min pooled accesses to keep a field offset
    session_ttl_s: float = 600.0       # analysis: idle seconds before an interactive session expires
    session_max_bytes: int = 256 * 1024 * 1024  # analysis: session-store byte budget (LRU past it)
    word2vec: Word2VecConfig = field(default_factory=lambda: Word2VecConfig(
        dim=32, window=5, epochs=2, subsample_pairs=0.5,
    ))

    def __post_init__(self) -> None:
        if self.window < 0:
            # window 0 = no context (the bare target instruction); used by
            # the window-size ablation as the no-context baseline.
            raise ValueError("window must be >= 0")
        if not 0.0 < self.confidence_threshold <= 1.0:
            raise ValueError("confidence threshold must be in (0, 1]")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if self.dedup_cache_size < 0:
            raise ValueError("dedup_cache_size must be >= 0")
        if self.tool_timeout <= 0:
            raise ValueError("tool_timeout must be > 0")
        if self.tool_retries < 0:
            raise ValueError("tool_retries must be >= 0")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be > 0 (or None to wait forever)")
        if self.serve_max_batch < 1:
            raise ValueError("serve_max_batch must be >= 1")
        if self.serve_max_delay_ms < 0:
            raise ValueError("serve_max_delay_ms must be >= 0")
        if self.serve_workers < 0:
            raise ValueError("serve_workers must be >= 0 (0 = auto)")
        if self.posterior_min_accesses < 1:
            raise ValueError("posterior_min_accesses must be >= 1")
        if self.session_ttl_s <= 0:
            raise ValueError("session_ttl_s must be > 0")
        if self.session_max_bytes < 1:
            raise ValueError("session_max_bytes must be >= 1")
        self.word2vec.dim = self.token_dim

    def to_dict(self) -> dict:
        """JSON-ready snapshot of every knob (nested word2vec included).

        The exact inverse of :meth:`from_dict`; this is what
        :class:`repro.core.artifacts.ModelBundle` freezes into
        ``manifest.json`` so a load can restore the training-time
        configuration instead of trusting the caller's.
        """
        data = dataclasses.asdict(self)
        data["conv_channels"] = list(self.conv_channels)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CatiConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown fields raise ``ValueError`` — a manifest written by a
        newer code version must not be silently half-applied.
        """
        data = dict(data)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown CatiConfig fields: {', '.join(unknown)}")
        word2vec = data.get("word2vec")
        if isinstance(word2vec, dict):
            w2v_known = {f.name for f in dataclasses.fields(Word2VecConfig)}
            w2v_unknown = sorted(set(word2vec) - w2v_known)
            if w2v_unknown:
                raise ValueError(
                    f"unknown Word2VecConfig fields: {', '.join(w2v_unknown)}")
            data["word2vec"] = Word2VecConfig(**word2vec)
        if "conv_channels" in data:
            data["conv_channels"] = tuple(data["conv_channels"])
        return cls(**data)

    def resolved_serve_workers(self) -> int:
        """``serve_workers`` with the 0 default resolved to ``min(cores, 4)``."""
        if self.serve_workers:
            return self.serve_workers
        import os

        return max(1, min(os.cpu_count() or 1, 4))

    @property
    def vuc_length(self) -> int:
        """Instructions per VUC: 2w + 1 (= 21 at the paper's w=10)."""
        return 2 * self.window + 1

    @property
    def instruction_dim(self) -> int:
        """Embedded instruction width: 3 tokens x token_dim (= 96)."""
        return 3 * self.token_dim
