"""Occlusion importance ε (§VII-B, eq. 5, Fig. 6).

For a VUC and a trained model, ε_k is the ratio of the predicted class's
confidence after BLANKing instruction k to the unoccluded confidence.
ε < 1 means the instruction supported the prediction; the paper's Fig. 6
shows central/target instructions have the smallest ε and importance
decays with distance.

``occlusion_epsilons`` is the naive per-window reference (L+1 separate
forward passes); ``occlusion_epsilons_many`` and ``epsilon_distribution``
run on the batched, dedup-aware engine, which materializes every
occluded variant in one id tensor and shares all untouched contexts with
the base window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import BatchedOcclusion
from repro.core.pipeline import Cati
from repro.vuc.generalize import BLANK_TOKENS, Tokens


@dataclass
class OcclusionResult:
    """ε for every window position of one VUC."""

    epsilons: np.ndarray          # [L]
    predicted_index: int          # leaf class index used as the probe
    base_confidence: float


def occlusion_epsilons(cati: Cati, window: tuple[Tokens, ...]) -> OcclusionResult:
    """Compute eq. (5) for one generalized VUC window."""
    base = cati.predict_vuc_proba([window])[0]
    predicted = int(base.argmax())
    base_confidence = float(base[predicted])
    occluded = []
    for position in range(len(window)):
        variant = list(window)
        variant[position] = BLANK_TOKENS
        occluded.append(tuple(variant))
    probs = cati.predict_vuc_proba(occluded)
    epsilons = probs[:, predicted] / max(base_confidence, 1e-12)
    return OcclusionResult(
        epsilons=epsilons,
        predicted_index=predicted,
        base_confidence=base_confidence,
    )


def occlusion_epsilons_many(
    cati: Cati,
    windows: list[tuple[Tokens, ...]],
) -> "BatchedOcclusion":
    """Engine-path eq. (5) for a whole batch of windows at once."""
    return cati.engine.occlusion_epsilons_many(windows)


def epsilon_distribution(
    cati: Cati,
    windows: list[tuple[Tokens, ...]],
    thresholds: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    use_engine: bool = True,
) -> np.ndarray:
    """Fig. 6b's heat map: per position, P(ε in (t, 1)) for each t.

    Returns a [L, len(thresholds)] matrix; row ordering matches window
    positions (row w is the central instruction).  ``use_engine=False``
    forces the naive per-window path (equivalence testing / debugging).
    """
    if not windows:
        raise ValueError("need at least one window")
    length = len(windows[0])
    if use_engine:
        all_eps = occlusion_epsilons_many(cati, windows).epsilons        # [N, L]
    else:
        all_eps = np.stack([occlusion_epsilons(cati, w).epsilons for w in windows])
    # An occlusion that changes nothing (e.g. BLANKing an already-BLANK
    # padding row) has ε = 1 up to batch-composition float noise; snap it
    # so the strict ε < 1 indicator below treats it as "no effect".
    all_eps = np.where(np.abs(all_eps - 1.0) < 1e-9, 1.0, all_eps)
    out = np.zeros((length, len(thresholds)))
    for column, threshold in enumerate(thresholds):
        out[:, column] = ((all_eps > threshold) & (all_eps < 1.0)).mean(axis=0)
    return out
