"""Crash-safe filesystem primitives shared by every persistence path.

Three places used to hand-roll "write a temp file next to the target and
rename it into place": the CLI's ``--metrics-out`` dump, the model
bundle's directory swap, and (new) the batch checkpoint commit.  They
now share these helpers, which add the two details the ad-hoc versions
skipped:

* the temp file is **fsynced before the rename** (``fsync=True``), so a
  power cut right after ``os.replace`` cannot leave a named-but-empty
  file on journaling filesystems that reorder data behind metadata;
* the **parent directory entry is fsynced after the rename**, making the
  rename itself durable, not just the bytes.

Contract: after :func:`atomic_write` / :func:`atomic_replace_dir`
returns, a reader at the target path sees either the complete old
content or the complete new content — never a torn mix — and a crash at
any point leaves at most a stray ``.*.tmp*`` sibling, never a damaged
target.  Temp files are always created in the target's directory so the
final ``os.replace`` is a same-filesystem rename (cross-device renames
raise ``EXDEV`` and are not atomic anyway).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from pathlib import Path

__all__ = ["atomic_write", "atomic_replace_dir", "fsync_dir"]


def fsync_dir(path: str | Path) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path: str | Path, data: bytes | str, *,
                 fsync: bool = True, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``data`` (same-dir temp + rename).

    Parent directories are created as needed.  ``str`` data is encoded
    with ``encoding``.  ``fsync=False`` skips both the file and
    directory syncs for callers where durability past a process crash
    is enough (e.g. scratch state inside a test).
    """
    path = Path(path)
    directory = path.absolute().parent
    directory.mkdir(parents=True, exist_ok=True)
    if isinstance(data, str):
        data = data.encode(encoding)
    fd, temp_name = tempfile.mkstemp(dir=directory,
                                     prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(directory)


def atomic_replace_dir(staging: str | Path, target: str | Path, *,
                       fsync: bool = True) -> None:
    """Atomically promote the ``staging`` directory to ``target``.

    ``os.rename`` cannot replace a non-empty directory, so an existing
    target is first renamed aside (to a sibling of ``staging``) and
    removed only after the new directory is in place; a crash between
    the two renames leaves the new content at ``target`` and a stray
    ``*.old`` sibling, never a missing or half-swapped target.
    """
    staging = Path(staging)
    target = Path(target)
    if target.exists():
        doomed = staging.with_name(staging.name + ".old")
        os.rename(target, doomed)
        os.rename(staging, target)
        shutil.rmtree(doomed, ignore_errors=True)
    else:
        os.rename(staging, target)
    if fsync:
        fsync_dir(target.absolute().parent)
