"""Cross-function posterior reasoning over per-variable predictions.

CATI stops at 19 leaf types per variable; this package adds the next
rung — recovering **struct layouts**.  Per-access leaf posteriors are
grouped by base object (struct-typed frame slots and the pointees of
struct pointers), pooled across functions by access-offset signature,
and a leaf type is voted per field offset (a module-level analogue of
the paper's eq. 4 per-variable vote).  Ground truth comes from the
synthetic compiler's labeled member accesses and the
``DW_AT_data_member_location`` attributes on MEMBER DIEs.
"""

from repro.posterior.layouts import (
    FieldPrediction,
    StructLayout,
    flat_baseline_layouts,
    layouts_to_fields,
    recover_layouts,
)
from repro.posterior.truth import truth_layouts

__all__ = [
    "FieldPrediction",
    "StructLayout",
    "flat_baseline_layouts",
    "layouts_to_fields",
    "recover_layouts",
    "truth_layouts",
]
