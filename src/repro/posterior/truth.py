"""Ground-truth struct layouts from a binary's debug blob.

The synthetic compiler records every struct member's byte offset as
``DW_AT_data_member_location`` on its MEMBER DIE; here we walk the
decoded DIE tree and emit, for every struct-typed variable and every
pointer-to-struct variable, the object's true ``{offset: leaf label}``
layout keyed exactly like the inference pipeline keys objects
(``<scope>::<base><offset:+d>`` with a ``->`` suffix for pointees), so
predicted and true layouts join on object id.
"""

from __future__ import annotations

from repro.codegen.binary import Binary, _die_size
from repro.core.types import TypeName
from repro.dwarf.dies import Die, Tag
from repro.dwarf.resolver import UnresolvableType, resolve_type


def _unwrap(die: Die | None, stop_at_pointer: bool) -> Die | None:
    """Follow typedef/qualifier/array (and optionally pointer) chains."""
    for _ in range(64):
        if die is None:
            return None
        if die.tag in (Tag.TYPEDEF, Tag.CONST_TYPE, Tag.VOLATILE_TYPE, Tag.ARRAY_TYPE):
            die = die.type_ref
            continue
        if die.tag is Tag.POINTER_TYPE and not stop_at_pointer:
            die = die.type_ref
            continue
        return die
    return None


def _struct_fields(struct_die: Die) -> dict[int, TypeName]:
    """``{byte offset: leaf label}`` of a STRUCTURE_TYPE DIE's members."""
    fields: dict[int, TypeName] = {}
    for member in struct_die.children:
        if member.tag is not Tag.MEMBER:
            continue
        offset = member.member_offset
        if offset is None:
            continue
        try:
            label = resolve_type(member.type_ref)
        except UnresolvableType:
            continue
        fields[offset] = label
    return fields


def truth_layouts(binary: Binary, scope_name: str | None = None) -> dict[str, dict[int, TypeName]]:
    """True layouts for every struct / struct-pointer variable.

    Keys match the pipeline's object ids:
    ``f"{scope_name}/{func_index}::{base}{offset:+d}"`` for struct
    locals, the same with a ``->`` suffix for struct-pointer pointees.
    ``scope_name`` defaults to the binary's own name (pass the stripped
    twin's name if it differs).
    """
    scope_name = scope_name or binary.name
    cu = binary.debug_tree()
    out: dict[str, dict[int, TypeName]] = {}
    for func_index, sub in enumerate(cu.find_all(Tag.SUBPROGRAM)):
        for child in sub.children:
            if child.tag is not Tag.VARIABLE:
                continue
            location = child.location
            if location is None:
                continue
            type_die = child.type_ref
            try:
                label = resolve_type(type_die)
            except UnresolvableType:
                continue
            if label not in (TypeName.STRUCT, TypeName.STRUCT_POINTER):
                continue
            base = "rbp" if location < 0 else "rsp"
            object_id = f"{scope_name}/{func_index}::{base}{location:+d}"
            if label is TypeName.STRUCT_POINTER:
                struct_die = _unwrap(type_die, stop_at_pointer=False)
                object_id += "->"
            else:
                struct_die = _unwrap(type_die, stop_at_pointer=True)
            if struct_die is None or struct_die.tag is not Tag.STRUCTURE_TYPE:
                continue
            fields = _struct_fields(struct_die)
            if fields:
                out[object_id] = fields
    return out


def variable_sizes(binary: Binary) -> dict[str, int]:
    """Object id -> storage size, for corpus statistics."""
    cu = binary.debug_tree()
    out: dict[str, int] = {}
    for func_index, sub in enumerate(cu.find_all(Tag.SUBPROGRAM)):
        for child in sub.children:
            if child.tag is Tag.VARIABLE and child.location is not None:
                base = "rbp" if child.location < 0 else "rsp"
                key = f"{binary.name}/{func_index}::{base}{child.location:+d}"
                out[key] = _die_size(child.type_ref)
    return out
