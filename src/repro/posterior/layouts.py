"""Struct-layout recovery from pooled per-access leaf posteriors.

The pipeline's voting stage (eqs. 3-4) decides one leaf type per
variable.  Here we go one level deeper: every VUC row carries an
:class:`~repro.vuc.dataflow.AccessSite` — the byte offset the access
touches *inside its base object* — so for variables the vote decided
are ``struct`` or ``struct*`` we can re-aggregate the same [N, 19]
leaf-posterior rows **per field offset** and vote a leaf type for each
field.

Base objects:

* a variable predicted ``struct`` is itself an object; its SLOT
  accesses' interior offsets are field offsets,
* a variable predicted ``struct*`` owns a *pointee* object (id suffixed
  ``->``); its DEREF accesses' ``[reg+disp]`` displacements are field
  offsets.

Objects are then pooled **across functions**: two objects whose access
-offset signatures agree (shared offsets with identical dominant access
widths, enough overlap to be evidence rather than coincidence) are
treated as instances of the same struct type, and their per-offset
posterior rows are summed together.  That is what lifts sparse objects
— a function that touches only one field still gets the full layout
voted from its siblings.

Per offset, the decision is eq. (4) over the pooled clipped rows; ties
are broken by access width (the leaf whose canonical width matches the
dominant width observed at the offset wins), then by mean posterior
confidence.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.types import ALL_TYPES, TypeName
from repro.core.voting import DEFAULT_THRESHOLD, clip_confidences
from repro.vuc.dataflow import AccessSite
from repro.vuc.locate import TargetKind

#: Canonical storage width per leaf type (bytes); 0 = no single width.
TYPE_WIDTHS: dict[TypeName, int] = {
    TypeName.BOOL: 1,
    TypeName.STRUCT: 0,
    TypeName.CHAR: 1,
    TypeName.UNSIGNED_CHAR: 1,
    TypeName.FLOAT: 4,
    TypeName.DOUBLE: 8,
    TypeName.LONG_DOUBLE: 16,
    TypeName.ENUM: 4,
    TypeName.INT: 4,
    TypeName.SHORT_INT: 2,
    TypeName.LONG_INT: 8,
    TypeName.LONG_LONG_INT: 8,
    TypeName.UNSIGNED_INT: 4,
    TypeName.SHORT_UNSIGNED_INT: 2,
    TypeName.LONG_UNSIGNED_INT: 8,
    TypeName.LONG_LONG_UNSIGNED_INT: 8,
    TypeName.VOID_POINTER: 8,
    TypeName.STRUCT_POINTER: 8,
    TypeName.ARITH_POINTER: 8,
}

#: Minimum shared offsets for two objects to pool (capped by the smaller
#: object's own offset count, so single-field objects can still attach).
_POOL_MIN_SHARED = 2


@dataclass(frozen=True, slots=True)
class FieldPrediction:
    """One recovered field: offset, voted leaf type and vote detail."""

    offset: int
    label: TypeName
    n_accesses: int
    width: int          # dominant access width observed at the offset
    confidence: float   # winning summed clipped score / total
    margin: float       # winner minus runner-up of the summed scores


@dataclass
class StructLayout:
    """A recovered layout: the pooled objects and their voted fields."""

    object_id: str                 # canonical (first) object id
    objects: tuple[str, ...]       # every pooled object id
    fields: list[FieldPrediction]
    n_accesses: int                # pooled accesses across all offsets

    def field_types(self) -> dict[int, TypeName]:
        return {f.offset: f.label for f in self.fields}


@dataclass
class _Object:
    """Accumulator for one base object's per-offset posterior rows."""

    object_id: str
    rows_by_offset: dict[int, list[int]]      # offset -> row indices
    widths_by_offset: dict[int, list[int]]    # offset -> access widths


def _collect_objects(
    predictions,
    variable_ids: list[str],
    sites: list[AccessSite],
) -> list[_Object]:
    """Group posterior rows into base objects, in first-seen order.

    A variable owns a *slot object* (its own frame storage is a struct)
    when the vote said ``struct``, or — because member-labeled models
    vote the dominant *field* type instead — when its SLOT accesses span
    at least two distinct interior offsets (a scalar only ever touches
    offset 0).  A variable owns a *pointee object* (``->`` suffix) when
    the vote said ``struct*`` or its DEREF accesses reach a nonzero
    ``[reg+disp]`` displacement (scalar pointers dereference at disp 0).
    """
    predicted_by_var = {p.variable_id: p.predicted for p in predictions}
    slot_offsets: dict[str, set[int]] = defaultdict(set)
    deref_disps: dict[str, set[int]] = defaultdict(set)
    for variable_id, site in zip(variable_ids, sites):
        if site.offset < 0:
            continue
        if site.kind is TargetKind.SLOT:
            slot_offsets[variable_id].add(site.offset)
        else:
            deref_disps[variable_id].add(site.offset)

    objects: dict[str, _Object] = {}
    for row, (variable_id, site) in enumerate(zip(variable_ids, sites)):
        predicted = predicted_by_var.get(variable_id)
        if site.kind is TargetKind.SLOT and (
                predicted is TypeName.STRUCT
                or len(slot_offsets[variable_id]) >= 2):
            object_id = variable_id
        elif site.kind is TargetKind.DEREF and (
                predicted is TypeName.STRUCT_POINTER
                or max(deref_disps[variable_id], default=0) > 0):
            object_id = variable_id + "->"
        else:
            continue
        if site.offset < 0:
            continue  # negative interior offsets are locator noise
        obj = objects.get(object_id)
        if obj is None:
            obj = _Object(object_id=object_id, rows_by_offset=defaultdict(list),
                          widths_by_offset=defaultdict(list))
            objects[object_id] = obj
        obj.rows_by_offset[site.offset].append(row)
        obj.widths_by_offset[site.offset].append(site.width)
    return list(objects.values())


def _dominant_width(widths: list[int]) -> int:
    """Most frequent non-zero access width (ties -> smaller width)."""
    counts: dict[int, int] = defaultdict(int)
    for width in widths:
        if width > 0:
            counts[width] += 1
    if not counts:
        return 0
    return min(counts, key=lambda w: (-counts[w], w))


def _compatible(a: _Object, b: _Object) -> bool:
    """Do two objects look like instances of the same struct type?

    Shared offsets must agree on dominant access width everywhere, and
    there must be enough overlap (``_POOL_MIN_SHARED``, capped by the
    smaller object's offset count) that pooling is evidence-driven.
    """
    shared = set(a.rows_by_offset) & set(b.rows_by_offset)
    need = min(_POOL_MIN_SHARED,
               len(a.rows_by_offset), len(b.rows_by_offset))
    if len(shared) < need:
        return False
    for offset in shared:
        wa = _dominant_width(a.widths_by_offset[offset])
        wb = _dominant_width(b.widths_by_offset[offset])
        if wa and wb and wa != wb:
            return False
    return True


def _cluster_objects(objects: list[_Object]) -> list[list[_Object]]:
    """Greedy signature clustering, deterministic in input order.

    Objects are visited richest-first (most distinct offsets) so cluster
    anchors carry the fullest signatures; each object joins the first
    compatible cluster (compared against the anchor) or starts its own.
    """
    order = sorted(objects, key=lambda o: (-len(o.rows_by_offset), o.object_id))
    clusters: list[list[_Object]] = []
    for obj in order:
        for cluster in clusters:
            if _compatible(cluster[0], obj):
                cluster.append(obj)
                break
        else:
            clusters.append([obj])
    return clusters


def _vote_fields(
    cluster: list[_Object],
    clipped: np.ndarray,
    probs: np.ndarray,
    min_accesses: int,
) -> tuple[list[FieldPrediction], int]:
    """Vote a leaf type per pooled field offset (eq. 4 per offset)."""
    rows_by_offset: dict[int, list[int]] = defaultdict(list)
    widths_by_offset: dict[int, list[int]] = defaultdict(list)
    for obj in cluster:
        for offset, rows in obj.rows_by_offset.items():
            rows_by_offset[offset].extend(rows)
            widths_by_offset[offset].extend(obj.widths_by_offset[offset])

    fields: list[FieldPrediction] = []
    total_accesses = 0
    for offset in sorted(rows_by_offset):
        rows = rows_by_offset[offset]
        total_accesses += len(rows)
        if len(rows) < min_accesses:
            continue
        totals = clipped[rows].sum(axis=0)
        if float(totals.max()) <= 0.0:
            # No access cleared the clip threshold (eq. 3): fall back to
            # the unclipped pooled posterior rather than tie-break noise.
            totals = probs[rows].sum(axis=0)
        best = float(totals.max())
        candidates = [i for i, t in enumerate(totals) if t >= best - 1e-12]
        width = _dominant_width(widths_by_offset[offset])
        if len(candidates) > 1 and width:
            matched = [i for i in candidates if TYPE_WIDTHS[ALL_TYPES[i]] == width]
            if matched:
                candidates = matched
        if len(candidates) > 1:
            # Residual tie: highest mean (unclipped) posterior wins.
            means = probs[rows].mean(axis=0)
            candidates.sort(key=lambda i: -float(means[i]))
        winner = candidates[0]
        ranked = np.sort(totals)
        margin = float(ranked[-1] - ranked[-2]) if len(ranked) > 1 else float(ranked[-1])
        denom = float(totals.sum())
        fields.append(FieldPrediction(
            offset=offset,
            label=ALL_TYPES[winner],
            n_accesses=len(rows),
            width=width,
            confidence=best / denom if denom else 0.0,
            margin=margin,
        ))
    return fields, total_accesses


def recover_layouts(
    predictions,
    probs: np.ndarray,
    variable_ids: list[str],
    sites: list[AccessSite],
    threshold: float = DEFAULT_THRESHOLD,
    min_accesses: int = 2,
    pool: bool = True,
) -> list[StructLayout]:
    """Recover struct layouts from one binary's posterior rows.

    ``probs`` is the [N, 19] leaf-posterior matrix whose rows align with
    ``variable_ids`` and ``sites`` (the engine extracts them together);
    ``predictions`` are the already-voted per-variable results that
    decide which variables own base objects.  ``min_accesses`` drops
    offsets with too little pooled evidence (``posterior_min_accesses``);
    ``pool=False`` disables cross-function pooling (the flat per-slot
    baseline).
    """
    if len(variable_ids) != len(sites):
        raise ValueError(
            f"variable_ids ({len(variable_ids)}) and sites ({len(sites)}) "
            "must be row-aligned")
    probs = np.asarray(probs)
    objects = _collect_objects(predictions, variable_ids, sites)
    if not objects:
        return []
    clipped = clip_confidences(probs, threshold)
    clusters = _cluster_objects(objects) if pool else [[obj] for obj in objects]

    layouts: list[StructLayout] = []
    for cluster in clusters:
        fields, n_accesses = _vote_fields(cluster, clipped, probs, min_accesses)
        if not fields:
            continue
        member_ids = tuple(sorted(obj.object_id for obj in cluster))
        layouts.append(StructLayout(
            object_id=member_ids[0],
            objects=member_ids,
            fields=fields,
            n_accesses=n_accesses,
        ))
    layouts.sort(key=lambda layout: layout.object_id)
    return layouts


def flat_baseline_layouts(
    predictions,
    probs: np.ndarray,
    variable_ids: list[str],
    sites: list[AccessSite],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[StructLayout]:
    """The no-pooling baseline: each object voted from its own accesses.

    No cross-function aggregation, no evidence floor (``min_accesses=1``)
    — exactly what a per-slot argmax without the posterior stage gives.
    The benchmark gates the posterior's field-level accuracy strictly
    above this.
    """
    return recover_layouts(predictions, probs, variable_ids, sites,
                           threshold=threshold, min_accesses=1, pool=False)


def layouts_to_fields(layouts: list[StructLayout]) -> dict[str, dict[int, TypeName]]:
    """Flatten layouts to ``object id -> {offset: label}`` for evaluation.

    Every pooled member object receives the cluster's voted fields, so a
    sparse object is scored against the full recovered layout.
    """
    out: dict[str, dict[int, TypeName]] = {}
    for layout in layouts:
        fields = layout.field_types()
        for object_id in layout.objects:
            out[object_id] = dict(fields)
    return out
