"""x86-64 instruction decoder: machine-code bytes → :class:`Instruction`.

Covers the userland instruction subset gcc/clang emit at -O0..-O2 for C
code — the same coverage the pipeline's locator and generalizer need:
MOV family (including immediates and extensions), LEA, the ALU groups,
shifts, TEST/CMP, PUSH/POP, CALL/JMP/Jcc/SETcc, RET/LEAVE/NOP/ENDBR64,
scalar SSE (movss/movsd/arith/ucomi/cvt) and the x87 long-double loads
and stores.

Decoding is table-light and structured around the actual encoding
pipeline: legacy prefixes → REX → opcode (with 0F escape) → ModRM/SIB →
displacement → immediate.  Output renders in AT&T operand order, the
same convention as the rest of the IR, and the test suite cross-checks
every decoded function against objdump's output byte-for-byte and
text-for-text.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.asm.instruction import Instruction
from repro.asm.operands import Imm, Label, Mem, Operand, Reg
from repro.core.errors import DecodeError as _CatiDecodeError

#: Register name tables indexed by (reg number 0-15) per width.
_REG64 = ("rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
          "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15")
_REG32 = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
          "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d")
_REG16 = ("ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
          "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w")
_REG8 = ("al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
         "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b")
_REG8_LEGACY = ("al", "cl", "dl", "bl", "ah", "ch", "dh", "bh")
_XMM = tuple(f"xmm{i}" for i in range(16))

_CC_NAMES = ("o", "no", "b", "ae", "e", "ne", "be", "a",
             "s", "ns", "p", "np", "l", "ge", "le", "g")

_GROUP1 = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")
_SHIFT_GROUP = ("rol", "ror", "rcl", "rcr", "shl", "shr", "sal", "sar")
_GROUP3 = ("test", "test", "not", "neg", "mul", "imul", "div", "idiv")


class DecodeError(_CatiDecodeError):
    """Raised when the byte stream cannot be decoded."""

    def __init__(self, message: str, offset: int = 0) -> None:
        super().__init__(f"{message} at offset 0x{offset:x}", stage="decode")
        self.offset = offset


@dataclass
class _State:
    """Mutable decode cursor + prefix bookkeeping for one instruction."""

    data: bytes
    pos: int
    address: int             # virtual address of the instruction start
    start: int = 0           # byte offset of the instruction start
    rex: int = 0
    opsize: bool = False     # 0x66 prefix
    rep: int = 0             # 0xF3 / 0xF2 prefix value

    def rel_target(self, rel: int) -> int:
        """Branch target VA: rel is relative to the instruction end,
        and relative immediates are always the last bytes, so the
        current cursor is the end."""
        return self.address + (self.pos - self.start) + rel

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise DecodeError("truncated instruction", self.pos)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def i8(self) -> int:
        return struct.unpack_from("<b", self.data, self._take(1))[0]

    def u8(self) -> int:
        return self.data[self._take(1)]

    def i16(self) -> int:
        return struct.unpack_from("<h", self.data, self._take(2))[0]

    def i32(self) -> int:
        return struct.unpack_from("<i", self.data, self._take(4))[0]

    def i64(self) -> int:
        return struct.unpack_from("<q", self.data, self._take(8))[0]

    def _take(self, n: int) -> int:
        if self.pos + n > len(self.data):
            raise DecodeError("truncated immediate/displacement", self.pos)
        start = self.pos
        self.pos += n
        return start

    # -- REX helpers -----------------------------------------------------------

    @property
    def rex_w(self) -> bool:
        return bool(self.rex & 0x8)

    @property
    def rex_r(self) -> int:
        return (self.rex & 0x4) >> 2

    @property
    def rex_x(self) -> int:
        return (self.rex & 0x2) >> 1

    @property
    def rex_b(self) -> int:
        return self.rex & 0x1

    def gp(self, number: int, width: int) -> str:
        if width == 8:
            return _REG64[number]
        if width == 4:
            return _REG32[number]
        if width == 2:
            return _REG16[number]
        if self.rex:
            return _REG8[number]
        return _REG8_LEGACY[number] if number < 8 else _REG8[number]

    @property
    def opwidth(self) -> int:
        """Operand width from prefixes: REX.W=8, 0x66=2, default 4."""
        if self.rex_w:
            return 8
        if self.opsize:
            return 2
        return 4


def _modrm(state: _State, width: int, reg_table: str = "gp") -> tuple[int, Operand]:
    """Decode ModRM (+SIB, +disp); return (reg field, r/m operand)."""
    modrm = state.byte()
    mod = modrm >> 6
    reg = ((modrm >> 3) & 0x7) | (state.rex_r << 3)
    rm = (modrm & 0x7) | (state.rex_b << 3)

    if mod == 3:
        if reg_table == "xmm":
            return reg, Reg(_XMM[rm])
        return reg, Reg(state.gp(rm, width))

    # memory form
    base: str | None = None
    index: str | None = None
    scale = 1
    disp = 0
    if (modrm & 0x7) == 4:  # SIB follows
        sib = state.byte()
        scale = 1 << (sib >> 6)
        index_num = ((sib >> 3) & 0x7) | (state.rex_x << 3)
        base_num = (sib & 0x7) | (state.rex_b << 3)
        if index_num != 4:  # 4 = no index
            index = _REG64[index_num]
        if (sib & 0x7) == 5 and mod == 0:
            base = None
            disp = state.i32()
        else:
            base = _REG64[base_num]
    elif (modrm & 0x7) == 5 and mod == 0:
        # RIP-relative
        disp = state.i32()
        return reg, Mem(disp=disp, base="rip")
    else:
        base = _REG64[rm]

    if mod == 1:
        disp = state.i8()
    elif mod == 2:
        disp = state.i32()
    if index is not None and scale == 1 and base is None:
        # keep canonical form; Mem handles rendering
        pass
    return reg, Mem(disp=disp, base=base, index=index, scale=scale)


def _width_suffix(width: int) -> str:
    return {1: "b", 2: "w", 4: "l", 8: "q"}[width]


def _mem_or_reg_mnemonic(base: str, operand: Operand, width: int) -> str:
    """objdump prints a width suffix only when the width is ambiguous
    (memory operand with an immediate or alone)."""
    if isinstance(operand, Mem):
        return base + _width_suffix(width)
    return base


def decode_one(data: bytes, offset: int, address: int) -> tuple[Instruction, int]:
    """Decode the instruction at ``offset``; return (instruction, length)."""
    state = _State(data=data, pos=offset, address=address, start=offset)

    # -- prefixes -------------------------------------------------------------
    while True:
        if state.pos >= len(data):
            raise DecodeError("ran off end in prefixes", state.pos)
        byte = data[state.pos]
        if byte == 0x66:
            state.opsize = True
            state.pos += 1
        elif byte in (0xF2, 0xF3):
            state.rep = byte
            state.pos += 1
        elif byte in (0x2E, 0x3E, 0x26, 0x36, 0x64, 0x65):  # segment prefixes
            state.pos += 1
        else:
            break
    if 0x40 <= data[state.pos] <= 0x4F:
        state.rex = data[state.pos] & 0xF
        state.pos += 1

    opcode = state.byte()
    instruction = _decode_opcode(state, opcode)
    length = state.pos - offset
    return Instruction(
        mnemonic=instruction.mnemonic, operands=instruction.operands, address=address,
    ), length


def _ins(mnemonic: str, *operands: Operand) -> Instruction:
    return Instruction(mnemonic=mnemonic, operands=tuple(operands))


def _decode_opcode(s: _State, op: int) -> Instruction:
    # -- one-byte opcodes -------------------------------------------------------
    if op == 0x0F:
        return _decode_0f(s, s.byte())

    if 0x50 <= op <= 0x57:
        return _ins("push", Reg(_REG64[(op - 0x50) | (s.rex_b << 3)]))
    if 0x58 <= op <= 0x5F:
        return _ins("pop", Reg(_REG64[(op - 0x58) | (s.rex_b << 3)]))

    # ALU r/m, r and r, r/m forms: op base in table
    alu_base = {0x00: "add", 0x08: "or", 0x10: "adc", 0x18: "sbb",
                0x20: "and", 0x28: "sub", 0x30: "xor", 0x38: "cmp"}
    if (op & 0xC7) in (0x00, 0x01, 0x02, 0x03) and (op & 0x38) in alu_base:
        name = alu_base[op & 0x38]
        width = 1 if (op & 1) == 0 else s.opwidth
        reg, rm = _modrm(s, width)
        reg_op = Reg(s.gp(reg, width))
        # No width suffix: the register operand already discloses it.
        if op & 2:  # r <- r/m
            return _ins(name, rm, reg_op)
        return _ins(name, reg_op, rm)
    if (op & 0xC7) in (0x04, 0x05) and (op & 0x38) in alu_base:
        # op AL/eAX, imm
        name = alu_base[op & 0x38]
        if op & 1:
            width = s.opwidth
            imm = s.i32() if width != 2 else s.i16()
            return _ins(name, Imm(imm), Reg(s.gp(0, width)))
        return _ins(name, Imm(s.i8()), Reg(s.gp(0, 1)))

    if op == 0x63:  # movsxd / movslq
        reg, rm = _modrm(s, 4)
        return _ins("movslq", rm, Reg(s.gp(reg, 8)))

    if op in (0x69, 0x6B):  # imul r, r/m, imm
        width = s.opwidth
        reg, rm = _modrm(s, width)
        imm = s.i8() if op == 0x6B else (s.i16() if width == 2 else s.i32())
        return _ins("imul", Imm(imm), rm, Reg(s.gp(reg, width)))

    if 0x70 <= op <= 0x7F:
        rel = s.i8()
        return _ins("j" + _CC_NAMES[op - 0x70], Label(s.rel_target(rel)))

    if op in (0x80, 0x81, 0x83):  # group1 imm
        width = 1 if op == 0x80 else s.opwidth
        reg, rm = _modrm(s, width)
        if op == 0x81:
            imm = s.i16() if width == 2 else s.i32()
        else:
            imm = s.i8()
        name = _GROUP1[reg & 7]
        return _ins(_mem_or_reg_mnemonic(name, rm, width), Imm(imm), rm)

    if op in (0x84, 0x85):  # test
        width = 1 if op == 0x84 else s.opwidth
        reg, rm = _modrm(s, width)
        return _ins("test", Reg(s.gp(reg, width)), rm)

    if op in (0x86, 0x87):  # xchg
        width = 1 if op == 0x86 else s.opwidth
        reg, rm = _modrm(s, width)
        return _ins("xchg", Reg(s.gp(reg, width)), rm)

    if op in (0x88, 0x89, 0x8A, 0x8B):  # mov
        width = 1 if (op & 1) == 0 else s.opwidth
        reg, rm = _modrm(s, width)
        reg_op = Reg(s.gp(reg, width))
        if op & 2:
            return _ins("mov", rm, reg_op)
        return _ins("mov", reg_op, rm)

    if op == 0x8D:  # lea
        reg, rm = _modrm(s, s.opwidth)
        return _ins("lea", rm, Reg(s.gp(reg, s.opwidth)))

    if op == 0x90:
        return _ins("xchg", Reg("ax"), Reg("ax")) if s.opsize else _ins("nop")

    if op == 0x98:
        return _ins("cltq") if s.rex_w else (_ins("cbtw") if s.opsize else _ins("cwtl"))
    if op == 0x99:
        return _ins("cqto") if s.rex_w else (_ins("cwtd") if s.opsize else _ins("cltd"))

    if 0xB0 <= op <= 0xB7:  # mov imm8, r8
        reg = (op - 0xB0) | (s.rex_b << 3)
        return _ins("mov", Imm(s.u8()), Reg(s.gp(reg, 1)))
    if 0xB8 <= op <= 0xBF:  # mov imm, r
        reg = (op - 0xB8) | (s.rex_b << 3)
        if s.rex_w:
            return _ins("movabs", Imm(s.i64()), Reg(s.gp(reg, 8)))
        if s.opsize:
            return _ins("mov", Imm(s.i16()), Reg(s.gp(reg, 2)))
        return _ins("mov", Imm(s.i32()), Reg(s.gp(reg, 4)))

    if op in (0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3):  # shift group
        width = 1 if op in (0xC0, 0xD0, 0xD2) else s.opwidth
        reg, rm = _modrm(s, width)
        name = _SHIFT_GROUP[reg & 7]
        mnemonic = _mem_or_reg_mnemonic(name, rm, width)
        if op in (0xC0, 0xC1):
            return _ins(mnemonic, Imm(s.u8()), rm)
        if op in (0xD0, 0xD1):
            return _ins(mnemonic, rm)
        return _ins(mnemonic, Reg("cl"), rm)

    if op == 0xC3:
        return _ins("retq")
    if op == 0xC9:
        return _ins("leave")
    if op == 0xCC:
        return _ins("int3")
    if op == 0xF4:
        return _ins("hlt")

    if op in (0xC6, 0xC7):  # mov imm, r/m
        width = 1 if op == 0xC6 else s.opwidth
        reg, rm = _modrm(s, width)
        if op == 0xC6:
            imm = s.u8()
        else:
            imm = s.i16() if width == 2 else s.i32()
        return _ins(_mem_or_reg_mnemonic("mov", rm, width), Imm(imm), rm)

    if op == 0xE8:
        return _ins("callq", Label(s.rel_target(s.i32())))
    if op == 0xE9:
        return _ins("jmp", Label(s.rel_target(s.i32())))
    if op == 0xEB:
        return _ins("jmp", Label(s.rel_target(s.i8())))

    if op in (0xF6, 0xF7):  # group3
        width = 1 if op == 0xF6 else s.opwidth
        reg, rm = _modrm(s, width)
        name = _GROUP3[reg & 7]
        if name == "test":
            if width == 1:
                return _ins(_mem_or_reg_mnemonic("test", rm, width), Imm(s.u8()), rm)
            imm = s.i16() if width == 2 else s.i32()
            return _ins(_mem_or_reg_mnemonic("test", rm, width), Imm(imm), rm)
        return _ins(_mem_or_reg_mnemonic(name, rm, width), rm)

    if op in (0xFE, 0xFF):  # group5 (inc/dec/call/jmp/push)
        # The reg field selects the operation; call/jmp/push operate on
        # 64-bit operands regardless of prefixes. Peek before decoding.
        if s.pos >= len(s.data):
            raise DecodeError("truncated modrm", s.pos)
        kind = (s.data[s.pos] >> 3) & 7
        if op == 0xFF and kind in (2, 3, 4, 5, 6):
            width = 8
        else:
            width = 1 if op == 0xFE else s.opwidth
        _reg, rm = _modrm(s, width)
        if op == 0xFF and kind == 2:
            return _ins("callq", _star(rm))
        if op == 0xFF and kind == 4:
            return _ins("jmp", _star(rm))
        if op == 0xFF and kind == 6:
            return _ins("push", rm)
        name = "inc" if kind == 0 else "dec"
        return _ins(_mem_or_reg_mnemonic(name, rm, width), rm)

    if 0xD8 <= op <= 0xDF:
        return _decode_x87(s, op)

    raise DecodeError(f"unknown opcode 0x{op:02x}", s.pos - 1)


#: x87 memory-form mnemonics: (opcode, reg field) -> mnemonic.
_X87_MEM = {
    (0xD8, 0): "fadds", (0xD8, 1): "fmuls", (0xD8, 4): "fsubs", (0xD8, 6): "fdivs",
    (0xD9, 0): "flds", (0xD9, 2): "fsts", (0xD9, 3): "fstps",
    (0xD9, 5): "fldcw", (0xD9, 7): "fnstcw",
    (0xDB, 0): "fildl", (0xDB, 2): "fistl", (0xDB, 3): "fistpl",
    (0xDB, 5): "fldt", (0xDB, 7): "fstpt",
    (0xDC, 0): "faddl", (0xDC, 1): "fmull", (0xDC, 4): "fsubl", (0xDC, 6): "fdivl",
    (0xDD, 0): "fldl", (0xDD, 2): "fstl", (0xDD, 3): "fstpl",
    (0xDE, 0): "fiadds", (0xDE, 1): "fimuls",
    (0xDF, 0): "filds", (0xDF, 3): "fistps", (0xDF, 5): "fildll", (0xDF, 7): "fistpll",
}

#: x87 register-form instructions: (opcode, modrm byte) -> (mnemonic, operands).
_X87_REG = {
    (0xD9, 0xC9): ("fxch", ()),
    (0xD9, 0xE0): ("fchs", ()),
    (0xD9, 0xE1): ("fabs", ()),
    (0xD9, 0xE8): ("fld1", ()),
    (0xD9, 0xEE): ("fldz", ()),
    (0xDE, 0xC1): ("faddp", (Reg("st"), Reg("st(1)"))),
    (0xDE, 0xC9): ("fmulp", (Reg("st"), Reg("st(1)"))),
    (0xDE, 0xE1): ("fsubrp", (Reg("st"), Reg("st(1)"))),
    (0xDE, 0xE9): ("fsubp", (Reg("st"), Reg("st(1)"))),
    (0xDE, 0xF1): ("fdivrp", (Reg("st"), Reg("st(1)"))),
    (0xDE, 0xF9): ("fdivp", (Reg("st"), Reg("st(1)"))),
    (0xDF, 0xE9): ("fucomip", ()),
    (0xDB, 0xE9): ("fucomi", ()),
    (0xDF, 0xF1): ("fcomip", ()),
}


def _decode_x87(s: _State, op: int) -> Instruction:
    if s.pos >= len(s.data):
        raise DecodeError("truncated x87", s.pos)
    modrm = s.data[s.pos]
    if modrm >= 0xC0:
        s.pos += 1
        known = _X87_REG.get((op, modrm))
        if known is not None:
            return _ins(known[0], *known[1])
        # Generic register-stack form: fld/fstp st(i) and friends.
        if op == 0xD9 and 0xC0 <= modrm <= 0xC7:
            return _ins("fld", Reg(f"st({modrm - 0xC0})"))
        if op == 0xDD and 0xD8 <= modrm <= 0xDF:
            return _ins("fstp", Reg(f"st({modrm - 0xD8})"))
        raise DecodeError(f"unknown x87 form {op:02x} {modrm:02x}", s.pos - 1)
    reg_field = (modrm >> 3) & 7
    name = _X87_MEM.get((op, reg_field))
    if name is None:
        raise DecodeError(f"unknown x87 memory form {op:02x}/{reg_field}", s.pos)
    _reg, rm = _modrm(s, 8)
    return _ins(name, rm)


def _star(rm: Operand) -> Operand:
    """Indirect call/jmp target; rendered as-is (we do not print the *)."""
    return rm


def _decode_0f(s: _State, op: int) -> Instruction:
    # endbr64: F3 0F 1E FA
    if op == 0x1E and s.rep == 0xF3:
        sub = s.byte()
        if sub == 0xFA:
            return _ins("endbr64")
        raise DecodeError(f"unknown F3 0F 1E {sub:02x}", s.pos - 1)
    if op == 0x1F:  # multi-byte nop
        _reg, rm = _modrm(s, s.opwidth)
        return _ins("nopw" if s.opsize else "nopl", rm)

    if op == 0x05:
        return _ins("syscall")
    if op == 0x0B:
        return _ins("ud2")
    if op == 0xA2:
        return _ins("cpuid")
    if op == 0x31:
        return _ins("rdtsc")

    # scalar SSE
    if op in (0x10, 0x11):
        if s.rep == 0xF3:
            name = "movss"
        elif s.rep == 0xF2:
            name = "movsd"
        elif s.opsize:
            name = "movupd"
        else:
            name = "movups"
        reg, rm = _modrm(s, 16, reg_table="xmm")
        xmm = Reg(_XMM[reg])
        if op == 0x10:
            return _ins(name, rm, xmm)
        return _ins(name, xmm, rm)
    if op in (0x28, 0x29):
        name = "movapd" if s.opsize else "movaps"
        reg, rm = _modrm(s, 16, reg_table="xmm")
        xmm = Reg(_XMM[reg])
        return _ins(name, rm, xmm) if op == 0x28 else _ins(name, xmm, rm)
    if op == 0x2A:  # cvtsi2ss/sd
        name = "cvtsi2ss" if s.rep == 0xF3 else "cvtsi2sd"
        width = 8 if s.rex_w else 4
        reg, rm = _modrm(s, width)
        suffix = ""
        if isinstance(rm, Mem):
            suffix = "q" if s.rex_w else "l"
        return _ins(name + suffix, rm, Reg(_XMM[reg]))
    if op in (0x2C, 0x2D):  # cvttss2si / cvtss2si
        prefix = "cvtt" if op == 0x2C else "cvt"
        name = prefix + ("ss2si" if s.rep == 0xF3 else "sd2si")
        reg, rm = _modrm(s, 16, reg_table="xmm")
        width = 8 if s.rex_w else 4
        return _ins(name, rm, Reg(s.gp(reg, width)))
    if op in (0x2E, 0x2F):
        name = ("ucomis" if op == 0x2E else "comis") + ("d" if s.opsize else "s")
        reg, rm = _modrm(s, 16, reg_table="xmm")
        return _ins(name, rm, Reg(_XMM[reg]))
    if op in (0x51, 0x58, 0x59, 0x5C, 0x5D, 0x5E, 0x5F):
        base = {0x51: "sqrt", 0x58: "add", 0x59: "mul", 0x5C: "sub",
                0x5D: "min", 0x5E: "div", 0x5F: "max"}[op]
        if s.rep == 0xF3:
            name = base + "ss"
        elif s.rep == 0xF2:
            name = base + "sd"
        elif s.opsize:
            name = base + "pd"
        else:
            name = base + "ps"
        reg, rm = _modrm(s, 16, reg_table="xmm")
        return _ins(name, rm, Reg(_XMM[reg]))
    if op == 0x5A:  # cvtss2sd / cvtsd2ss
        name = "cvtss2sd" if s.rep == 0xF3 else "cvtsd2ss"
        reg, rm = _modrm(s, 16, reg_table="xmm")
        return _ins(name, rm, Reg(_XMM[reg]))
    if op == 0x57:
        name = "xorpd" if s.opsize else "xorps"
        reg, rm = _modrm(s, 16, reg_table="xmm")
        return _ins(name, rm, Reg(_XMM[reg]))
    if op == 0xEF:
        reg, rm = _modrm(s, 16, reg_table="xmm")
        return _ins("pxor", rm, Reg(_XMM[reg]))
    if op in (0x6E, 0x7E):  # movd/movq between gp/xmm
        if op == 0x7E and s.rep == 0xF3:
            reg, rm = _modrm(s, 16, reg_table="xmm")
            return _ins("movq", rm, Reg(_XMM[reg]))
        width = 8 if s.rex_w else 4
        name = "movq" if s.rex_w else "movd"
        reg, rm = _modrm(s, width)
        xmm = Reg(_XMM[reg])
        return _ins(name, rm, xmm) if op == 0x6E else _ins(name, xmm, rm)
    if op == 0xD6:
        reg, rm = _modrm(s, 16, reg_table="xmm")
        return _ins("movq", Reg(_XMM[reg]), rm)

    if 0x40 <= op <= 0x4F:  # cmovcc
        width = s.opwidth
        reg, rm = _modrm(s, width)
        return _ins("cmov" + _CC_NAMES[op - 0x40], rm, Reg(s.gp(reg, width)))

    if 0x80 <= op <= 0x8F:  # jcc rel32
        return _ins("j" + _CC_NAMES[op - 0x80], Label(s.rel_target(s.i32())))

    if 0x90 <= op <= 0x9F:  # setcc
        _reg, rm = _modrm(s, 1)
        return _ins("set" + _CC_NAMES[op - 0x90], rm)

    if op == 0xAF:  # imul r, r/m
        width = s.opwidth
        reg, rm = _modrm(s, width)
        return _ins("imul", rm, Reg(s.gp(reg, width)))

    if op in (0xB6, 0xB7, 0xBE, 0xBF):  # movzx / movsx
        src_width = 1 if op in (0xB6, 0xBE) else 2
        dst_width = s.opwidth
        reg, rm = _modrm(s, src_width)
        prefix = "movz" if op in (0xB6, 0xB7) else "movs"
        name = prefix + _width_suffix(src_width) + _width_suffix(dst_width)
        return _ins(name, rm, Reg(s.gp(reg, dst_width)))

    raise DecodeError(f"unknown opcode 0f {op:02x}", s.pos - 1)


def decode_function(
    code: bytes,
    base_address: int,
    symbolizer=None,
) -> list[Instruction]:
    """Decode a whole function's bytes into an instruction list.

    ``symbolizer`` (optional) maps a target address to a display symbol
    (``"process_ints+0x2c"``); matching Label operands get annotated the
    way objdump annotates them.
    """
    out: list[Instruction] = []
    offset = 0
    while offset < len(code):
        instruction, length = decode_one(code, offset, base_address + offset)
        if symbolizer is not None:
            instruction = _symbolize(instruction, symbolizer)
        out.append(instruction)
        offset += length
    return out


def _symbolize(instruction: Instruction, symbolizer) -> Instruction:
    changed = False
    operands = []
    for op in instruction.operands:
        if isinstance(op, Label) and op.symbol is None:
            symbol = symbolizer(op.address)
            if symbol is not None:
                op = Label(address=op.address, symbol=symbol)
                changed = True
        operands.append(op)
    if not changed:
        return instruction
    return Instruction(
        mnemonic=instruction.mnemonic, operands=tuple(operands),
        address=instruction.address,
    )


def elf_symbolizer(elf) -> "callable":
    """Build a symbolizer from an :class:`~repro.elf.parser.ElfFile`'s
    function symbols: addresses inside a function map to ``name`` or
    ``name+0xoff`` (PLT stubs are not resolved — that needs relocation
    parsing, which stripped-binary workflows do not have anyway)."""
    functions = elf.function_symbols()
    plt = elf.plt_map()

    def lookup(address: int) -> str | None:
        name = plt.get(address)
        if name is not None:
            return name
        for symbol in functions:
            if symbol.value <= address < symbol.value + symbol.size:
                if address == symbol.value:
                    return symbol.name
                return f"{symbol.name}+0x{address - symbol.value:x}"
        return None

    return lookup
