"""From-scratch x86-64 instruction decoder (bytes → Instruction IR).

Together with :mod:`repro.elf` and :mod:`repro.dwarf.native`, this makes
the real-binary pipeline fully self-contained: no objdump or readelf
needed.  Cross-validated against objdump in the test suite.
"""

from repro.disasm.decoder import DecodeError, decode_function, decode_one, elf_symbolizer

__all__ = ["DecodeError", "decode_function", "decode_one", "elf_symbolizer"]
