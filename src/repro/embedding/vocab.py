"""Token vocabulary for the assembly-code embedding.

Tokens are the generalized mnemonic/operand strings produced by
:mod:`repro.vuc.generalize`.  Rare tokens (below ``min_count``) map to
``UNK`` so unseen binaries embed cleanly — the paper reports its
generalization covers >99% of new samples; UNK absorbs the rest.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

UNK = "UNK"


@dataclass
class Vocab:
    """Immutable token → id mapping with frequency bookkeeping."""

    token_to_id: dict[str, int] = field(default_factory=dict)
    counts: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @classmethod
    def build(cls, sequences: Iterable[Iterable[str]], min_count: int = 1) -> "Vocab":
        """Count tokens over token sequences and build the mapping.

        ``UNK`` always gets id 0, with a count equal to the total mass of
        the dropped rare tokens (so negative sampling stays calibrated).
        """
        counter: Counter[str] = Counter()
        for sequence in sequences:
            counter.update(sequence)
        kept = [(token, count) for token, count in counter.most_common() if count >= min_count]
        dropped_mass = sum(count for token, count in counter.items() if count < min_count)
        token_to_id = {UNK: 0}
        counts = [max(dropped_mass, 1)]
        for token, count in kept:
            token_to_id[token] = len(token_to_id)
            counts.append(count)
        return cls(token_to_id=token_to_id, counts=np.asarray(counts, dtype=np.int64))

    def __len__(self) -> int:
        return len(self.token_to_id)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    def id_of(self, token: str) -> int:
        """Token id, with rare/unseen tokens mapping to UNK (id 0)."""
        return self.token_to_id.get(token, 0)

    def encode(self, tokens: Iterable[str]) -> np.ndarray:
        """Encode a token sequence to an int32 id array."""
        return np.asarray([self.id_of(token) for token in tokens], dtype=np.int32)

    def unigram_table(self, power: float = 0.75) -> np.ndarray:
        """Negative-sampling distribution: counts ** power, normalized."""
        weights = self.counts.astype(np.float64) ** power
        return weights / weights.sum()

    def coverage(self, sequences: Iterable[Iterable[str]]) -> float:
        """Fraction of tokens in ``sequences`` that are in-vocabulary."""
        total = 0
        known = 0
        for sequence in sequences:
            for token in sequence:
                total += 1
                known += token in self.token_to_id
        return known / total if total else 1.0
