"""VUC → matrix encoding (§IV-C / Fig. 3c).

Each instruction is three tokens (mnemonic, op1, op2); each token embeds
to a 32-dim vector; the instruction is their concatenation (96 dims);
the VUC is the stacked ``[21, 96]`` float32 matrix the CNN consumes.

``encode_batch`` is fully vectorized: one vocabulary lookup over the
flattened token stream of *all* windows, then a single gather from the
embedding table — no per-window Python loop.  ``encode_ids`` exposes the
intermediate ``[N, L, 3]`` token-id tensor, which the inference engine
uses for content-hash deduplication without materializing embeddings.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

import numpy as np

from repro.embedding.word2vec import Word2Vec
from repro.vuc.generalize import Tokens


class VucEncoder:
    """Encode generalized VUC token windows into CNN input tensors."""

    def __init__(self, embedding: Word2Vec) -> None:
        self.embedding = embedding
        self._triple_index: dict[Tokens, int] = {}
        #: Packed-line memo ("mn\top1\top2" → row), sharing rows with
        #: the triple memo so both encode paths hit one table.
        self._line_index: dict[str, int] = {}
        self._triple_rows: list[tuple[int, int, int]] = []
        self._triple_table: np.ndarray | None = None
        # Serve handler threads encode concurrently; the two-step memo
        # insert (index slot, then row append) must stay consistent.
        self._memo_lock = threading.Lock()

    @property
    def token_dim(self) -> int:
        return self.embedding.config.dim

    @property
    def instruction_dim(self) -> int:
        return 3 * self.token_dim

    def encode_ids(
        self,
        windows: Sequence[Sequence[Tokens]],
        length: int | None = None,
    ) -> np.ndarray:
        """Many VUCs → [N, L, 3] int32 token-id tensor.

        ``length`` fixes L for empty batches (otherwise inferred from the
        first window); all windows must share the same length.  Distinct
        instruction triples are few (same-type clustering), so triple →
        id-triple lookups are memoized across calls instead of paying a
        per-token vocabulary lookup for the whole stream.
        """
        if not windows:
            return np.zeros((0, length or 0, 3), dtype=np.int32)
        n = len(windows)
        inferred = len(windows[0])
        flat = [triple for window in windows for triple in window]
        if len(flat) != n * inferred:
            raise ValueError("all windows must share the same length")
        index = self._triple_index
        misses = set(flat).difference(index)
        if misses:
            lookup = self.embedding.vocab.id_of
            with self._memo_lock:
                for triple in misses:
                    if triple in index:
                        continue  # another thread got here first
                    index[triple] = len(self._triple_rows)
                    self._triple_rows.append(
                        (lookup(triple[0]), lookup(triple[1]), lookup(triple[2])))
                self._triple_table = None
        table = self._triple_table
        if table is None:
            with self._memo_lock:
                table = self._triple_table = np.asarray(self._triple_rows,
                                                        dtype=np.int32)
        idx = np.fromiter(map(index.__getitem__, flat), dtype=np.int64, count=len(flat))
        return table[idx].reshape(n, inferred, 3)

    def encode_packed_ids(
        self,
        packed: Sequence[str],
        length: int | None = None,
    ) -> np.ndarray:
        """Packed windows → [N, L, 3] int32 ids, skipping tuple building.

        A packed window is one string: instructions joined by ``"\\n"``,
        the three tokens of each by ``"\\t"`` (the serving wire format —
        see :func:`repro.serve.protocol.pack_windows`).  Memoizing on
        the raw instruction line means the hot path is just string
        splits and dict hits; only *distinct* lines ever get parsed
        into token triples and vocabulary-resolved.
        """
        if not packed:
            return np.zeros((0, length or 0, 3), dtype=np.int32)
        n = len(packed)
        split = [window.split("\n") for window in packed]
        inferred = len(split[0])
        flat = [line for lines in split for line in lines]
        if len(flat) != n * inferred:
            raise ValueError("all windows must share the same length")
        index = self._line_index
        misses = set(flat).difference(index)
        if misses:
            lookup = self.embedding.vocab.id_of
            with self._memo_lock:
                for line in misses:
                    if line in index:
                        continue  # another thread got here first
                    triple = tuple(line.split("\t"))
                    if len(triple) != 3:
                        raise ValueError(
                            f"packed instruction must be 3 tab-separated "
                            f"tokens, got {line!r}")
                    row = self._triple_index.get(triple)
                    if row is None:
                        row = len(self._triple_rows)
                        self._triple_index[triple] = row
                        self._triple_rows.append(
                            (lookup(triple[0]), lookup(triple[1]),
                             lookup(triple[2])))
                        self._triple_table = None
                    index[line] = row
        table = self._triple_table
        if table is None:
            with self._memo_lock:
                table = self._triple_table = np.asarray(self._triple_rows,
                                                        dtype=np.int32)
        idx = np.fromiter(map(index.__getitem__, flat), dtype=np.int64, count=len(flat))
        return table[idx].reshape(n, inferred, 3)

    def encode_window(self, tokens: Sequence[Tokens]) -> np.ndarray:
        """One VUC → [len(window), 3*dim] float32 matrix."""
        flat_ids = self.embedding.vocab.encode(
            [token for triple in tokens for token in triple]
        )
        vectors = self.embedding.embed_ids(flat_ids)
        return vectors.reshape(len(tokens), self.instruction_dim).astype(np.float32)

    def encode_batch(
        self,
        windows: Sequence[Sequence[Tokens]],
        length: int | None = None,
    ) -> np.ndarray:
        """Many VUCs → [N, L, 3*dim] tensor (all windows must share L).

        ``length`` threads the window length through so empty batches
        keep the [0, L, C] shape downstream ``x.shape[1]`` consumers
        expect.
        """
        if not windows:
            return np.zeros((0, length or 0, self.instruction_dim), dtype=np.float32)
        ids = self.encode_ids(windows, length=length)
        n, win_len, _ = ids.shape
        vectors = self.embedding.embed_ids(ids.reshape(-1))
        return vectors.reshape(n, win_len, self.instruction_dim).astype(np.float32)
