"""VUC → matrix encoding (§IV-C / Fig. 3c).

Each instruction is three tokens (mnemonic, op1, op2); each token embeds
to a 32-dim vector; the instruction is their concatenation (96 dims);
the VUC is the stacked ``[21, 96]`` float32 matrix the CNN consumes.

Triples arrive *interned* (:mod:`repro.vuc.intern`): generalization
assigns every distinct triple a dense per-process ``intern_id`` at
parse time, so the encoder's hot path is one C-level attribute gather
plus one table lookup — no string hashing, no per-encoder triple memo.
The only per-encoder state is the flat ``intern_id → vocabulary
id-triple`` array, grown in id order as new triples appear.
``encode_ids`` exposes the ``[N, L, 3]`` token-id tensor the inference
engine uses for content-hash deduplication without materializing
embeddings; ``encode_packed_ids`` decodes the serving wire format
through the process-wide line memo, never building throwaway tuples.
"""

from __future__ import annotations

import operator
import threading
from collections.abc import Sequence

import numpy as np

from repro.embedding.word2vec import Word2Vec
from repro.vuc.generalize import Tokens
from repro.vuc.intern import intern_line, intern_tokens, interned_by_id

_intern_id_of = operator.attrgetter("intern_id")


class VucEncoder:
    """Encode generalized VUC token windows into CNN input tensors."""

    def __init__(self, embedding: Word2Vec) -> None:
        self.embedding = embedding
        #: intern_id → (id(mnemonic), id(op1), id(op2)); rows [0, _resolved)
        #: are valid.  Resolved in intern-id order so the freshness check
        #: on the hot path is a single integer compare.
        self._vocab_rows: np.ndarray = np.empty((0, 3), dtype=np.int32)
        self._resolved = 0
        # Serve handler threads encode concurrently; growth replaces the
        # array atomically under the lock, readers never see a partial row.
        self._memo_lock = threading.Lock()

    @property
    def token_dim(self) -> int:
        return self.embedding.config.dim

    @property
    def instruction_dim(self) -> int:
        return 3 * self.token_dim

    # -- intern_id plumbing ------------------------------------------------------

    def _intern_ids(self, flat: list) -> np.ndarray:
        """[len(flat)] intern ids; tolerates uninterned plain tuples."""
        try:
            return np.fromiter(map(_intern_id_of, flat), dtype=np.int64,
                               count=len(flat))
        except AttributeError:
            # External callers (tests, wire decoders that predate
            # interning) may pass plain tuples; intern them on the fly.
            return np.fromiter(
                (intern_tokens(triple).intern_id for triple in flat),
                dtype=np.int64, count=len(flat))

    def _rows_for(self, idx: np.ndarray) -> np.ndarray:
        """The vocab-row table covering every intern id in ``idx``."""
        top = int(idx.max()) + 1 if len(idx) else 0
        if top <= self._resolved:
            return self._vocab_rows
        with self._memo_lock:
            start = self._resolved
            if top > start:
                lookup = self.embedding.vocab.id_of
                fresh = np.empty((top - start, 3), dtype=np.int32)
                for intern_id in range(start, top):
                    triple = interned_by_id(intern_id)
                    fresh[intern_id - start] = (
                        lookup(triple[0]), lookup(triple[1]), lookup(triple[2]))
                self._vocab_rows = np.concatenate([self._vocab_rows[:start], fresh])
                self._resolved = top
            return self._vocab_rows

    # -- encoding ----------------------------------------------------------------

    def encode_ids(
        self,
        windows: Sequence[Sequence[Tokens]],
        length: int | None = None,
    ) -> np.ndarray:
        """Many VUCs → [N, L, 3] int32 token-id tensor.

        ``length`` fixes L for empty batches (otherwise inferred from the
        first window); all windows must share the same length.
        """
        if not windows:
            return np.zeros((0, length or 0, 3), dtype=np.int32)
        n = len(windows)
        inferred = len(windows[0])
        flat = [triple for window in windows for triple in window]
        if len(flat) != n * inferred:
            raise ValueError("all windows must share the same length")
        idx = self._intern_ids(flat)
        return self._rows_for(idx)[idx].reshape(n, inferred, 3)

    def encode_packed_ids(
        self,
        packed: Sequence[str],
        length: int | None = None,
    ) -> np.ndarray:
        """Packed windows → [N, L, 3] int32 ids, skipping tuple building.

        A packed window is one string: instructions joined by ``"\\n"``,
        the three tokens of each by ``"\\t"`` (the serving wire format —
        see :func:`repro.serve.protocol.pack_windows`).  Each distinct
        line is interned once per *process* (:func:`repro.vuc.intern
        .intern_line`), so the hot path is string splits plus dict hits
        shared across every encoder and serve generation.
        """
        if not packed:
            return np.zeros((0, length or 0, 3), dtype=np.int32)
        n = len(packed)
        split = [window.split("\n") for window in packed]
        inferred = len(split[0])
        flat = [line for lines in split for line in lines]
        if len(flat) != n * inferred:
            raise ValueError("all windows must share the same length")
        idx = np.fromiter(
            (intern_line(line).intern_id for line in flat),
            dtype=np.int64, count=len(flat))
        return self._rows_for(idx)[idx].reshape(n, inferred, 3)

    def encode_window(self, tokens: Sequence[Tokens]) -> np.ndarray:
        """One VUC → [len(window), 3*dim] float32 matrix."""
        flat_ids = self.embedding.vocab.encode(
            [token for triple in tokens for token in triple]
        )
        vectors = self.embedding.embed_ids(flat_ids)
        return vectors.reshape(len(tokens), self.instruction_dim).astype(np.float32)

    def encode_batch(
        self,
        windows: Sequence[Sequence[Tokens]],
        length: int | None = None,
    ) -> np.ndarray:
        """Many VUCs → [N, L, 3*dim] tensor (all windows must share L).

        ``length`` threads the window length through so empty batches
        keep the [0, L, C] shape downstream ``x.shape[1]`` consumers
        expect.
        """
        if not windows:
            return np.zeros((0, length or 0, self.instruction_dim), dtype=np.float32)
        ids = self.encode_ids(windows, length=length)
        n, win_len, _ = ids.shape
        vectors = self.embedding.embed_ids(ids.reshape(-1))
        return vectors.reshape(n, win_len, self.instruction_dim).astype(np.float32)
