"""VUC → matrix encoding (§IV-C / Fig. 3c).

Each instruction is three tokens (mnemonic, op1, op2); each token embeds
to a 32-dim vector; the instruction is their concatenation (96 dims);
the VUC is the stacked ``[21, 96]`` float32 matrix the CNN consumes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.embedding.word2vec import Word2Vec
from repro.vuc.generalize import Tokens


class VucEncoder:
    """Encode generalized VUC token windows into CNN input tensors."""

    def __init__(self, embedding: Word2Vec) -> None:
        self.embedding = embedding

    @property
    def token_dim(self) -> int:
        return self.embedding.config.dim

    @property
    def instruction_dim(self) -> int:
        return 3 * self.token_dim

    def encode_window(self, tokens: Sequence[Tokens]) -> np.ndarray:
        """One VUC → [len(window), 3*dim] float32 matrix."""
        flat_ids = self.embedding.vocab.encode(
            [token for triple in tokens for token in triple]
        )
        vectors = self.embedding.embed_ids(flat_ids)
        return vectors.reshape(len(tokens), self.instruction_dim).astype(np.float32)

    def encode_batch(self, windows: Sequence[Sequence[Tokens]]) -> np.ndarray:
        """Many VUCs → [N, L, 3*dim] tensor (all windows must share L)."""
        if not windows:
            return np.zeros((0, 0, self.instruction_dim), dtype=np.float32)
        return np.stack([self.encode_window(window) for window in windows])
