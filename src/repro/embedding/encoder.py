"""VUC → matrix encoding (§IV-C / Fig. 3c).

Each instruction is three tokens (mnemonic, op1, op2); each token embeds
to a 32-dim vector; the instruction is their concatenation (96 dims);
the VUC is the stacked ``[21, 96]`` float32 matrix the CNN consumes.

``encode_batch`` is fully vectorized: one vocabulary lookup over the
flattened token stream of *all* windows, then a single gather from the
embedding table — no per-window Python loop.  ``encode_ids`` exposes the
intermediate ``[N, L, 3]`` token-id tensor, which the inference engine
uses for content-hash deduplication without materializing embeddings.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.embedding.word2vec import Word2Vec
from repro.vuc.generalize import Tokens


class VucEncoder:
    """Encode generalized VUC token windows into CNN input tensors."""

    def __init__(self, embedding: Word2Vec) -> None:
        self.embedding = embedding
        self._triple_index: dict[Tokens, int] = {}
        self._triple_rows: list[tuple[int, int, int]] = []
        self._triple_table: np.ndarray | None = None

    @property
    def token_dim(self) -> int:
        return self.embedding.config.dim

    @property
    def instruction_dim(self) -> int:
        return 3 * self.token_dim

    def encode_ids(
        self,
        windows: Sequence[Sequence[Tokens]],
        length: int | None = None,
    ) -> np.ndarray:
        """Many VUCs → [N, L, 3] int32 token-id tensor.

        ``length`` fixes L for empty batches (otherwise inferred from the
        first window); all windows must share the same length.  Distinct
        instruction triples are few (same-type clustering), so triple →
        id-triple lookups are memoized across calls instead of paying a
        per-token vocabulary lookup for the whole stream.
        """
        if not windows:
            return np.zeros((0, length or 0, 3), dtype=np.int32)
        n = len(windows)
        inferred = len(windows[0])
        flat = [triple for window in windows for triple in window]
        if len(flat) != n * inferred:
            raise ValueError("all windows must share the same length")
        index = self._triple_index
        misses = set(flat).difference(index)
        if misses:
            lookup = self.embedding.vocab.id_of
            for triple in misses:
                index[triple] = len(self._triple_rows)
                self._triple_rows.append(
                    (lookup(triple[0]), lookup(triple[1]), lookup(triple[2])))
            self._triple_table = None
        table = self._triple_table
        if table is None:
            table = self._triple_table = np.asarray(self._triple_rows, dtype=np.int32)
        idx = np.fromiter(map(index.__getitem__, flat), dtype=np.int64, count=len(flat))
        return table[idx].reshape(n, inferred, 3)

    def encode_window(self, tokens: Sequence[Tokens]) -> np.ndarray:
        """One VUC → [len(window), 3*dim] float32 matrix."""
        flat_ids = self.embedding.vocab.encode(
            [token for triple in tokens for token in triple]
        )
        vectors = self.embedding.embed_ids(flat_ids)
        return vectors.reshape(len(tokens), self.instruction_dim).astype(np.float32)

    def encode_batch(
        self,
        windows: Sequence[Sequence[Tokens]],
        length: int | None = None,
    ) -> np.ndarray:
        """Many VUCs → [N, L, 3*dim] tensor (all windows must share L).

        ``length`` threads the window length through so empty batches
        keep the [0, L, C] shape downstream ``x.shape[1]`` consumers
        expect.
        """
        if not windows:
            return np.zeros((0, length or 0, self.instruction_dim), dtype=np.float32)
        ids = self.encode_ids(windows, length=length)
        n, win_len, _ = ids.shape
        vectors = self.embedding.embed_ids(ids.reshape(-1))
        return vectors.reshape(n, win_len, self.instruction_dim).astype(np.float32)
