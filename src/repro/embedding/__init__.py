"""Assembly-code embedding: vocabulary, from-scratch Word2Vec (SGNS) and
the VUC-to-matrix encoder (§IV-C).
"""

from repro.embedding.encoder import VucEncoder
from repro.embedding.vocab import UNK, Vocab
from repro.embedding.word2vec import Word2Vec, Word2VecConfig

__all__ = ["VucEncoder", "UNK", "Vocab", "Word2Vec", "Word2VecConfig"]
