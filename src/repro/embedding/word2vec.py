"""Word2Vec — skip-gram with negative sampling, in numpy.

Implements the paper's embedding stage (§IV-C, eq. 1): maximize
``log P(Ins_{t+j} | Ins_t)`` over a +-m window (m=5) of the generalized
token stream, with the standard SGNS approximation of the softmax.  The
output dimension is 32 per token, matching CATI.

The trainer is fully vectorized: one SGD step processes a minibatch of
(center, positive, negatives) triples with `np.add.at` scatter updates,
which keeps a full training run on a corpus of a few million tokens in
the tens of seconds on one CPU core.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.embedding.vocab import Vocab


@dataclass
class Word2VecConfig:
    """SGNS hyperparameters; defaults follow the paper where stated."""

    dim: int = 32               # embedding length per token (§IV-C)
    window: int = 5             # maximum distance m in eq. (1)
    negatives: int = 5
    epochs: int = 3
    learning_rate: float = 0.025
    min_learning_rate: float = 0.002
    batch_size: int = 1024
    subsample_pairs: float = 1.0   # keep this fraction of (center,ctx) pairs
    subsample_threshold: float = 1e-3  # frequent-token downsampling (t)
    seed: int = 13


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class Word2Vec:
    """Trained token embeddings with a gensim-like lookup interface."""

    def __init__(self, vocab: Vocab, config: Word2VecConfig | None = None) -> None:
        self.vocab = vocab
        self.config = config or Word2VecConfig()
        rng = np.random.default_rng(self.config.seed)
        scale = 0.5 / self.config.dim
        self.vectors = rng.uniform(-scale, scale, (len(vocab), self.config.dim)).astype(np.float32)
        self.context_vectors = np.zeros_like(self.vectors)
        self._trained = False

    # -- training ----------------------------------------------------------------

    def _make_pairs(self, sequences: Sequence[np.ndarray], rng: np.random.Generator) -> np.ndarray:
        """Collect (center, context) id pairs over all sequences."""
        pairs: list[np.ndarray] = []
        window = self.config.window
        for ids in sequences:
            n = len(ids)
            if n < 2:
                continue
            for offset in range(1, window + 1):
                if offset >= n:
                    break
                left = ids[:-offset]
                right = ids[offset:]
                pairs.append(np.stack([left, right], axis=1))
                pairs.append(np.stack([right, left], axis=1))
        if not pairs:
            return np.zeros((0, 2), dtype=np.int64)
        all_pairs = np.concatenate(pairs).astype(np.int64)
        if self.config.subsample_pairs < 1.0:
            keep = rng.random(len(all_pairs)) < self.config.subsample_pairs
            all_pairs = all_pairs[keep]
        return all_pairs

    def _keep_probs(self) -> np.ndarray:
        """Mikolov-style frequent-token downsampling probabilities.

        Without this, ultra-frequent tokens (BLANK, $IMM) dominate every
        batch and the summed scatter updates diverge.
        """
        t = self.config.subsample_threshold
        freqs = self.vocab.counts / max(self.vocab.counts.sum(), 1)
        with np.errstate(divide="ignore", invalid="ignore"):
            keep = np.sqrt(t / np.maximum(freqs, 1e-12)) + t / np.maximum(freqs, 1e-12)
        return np.clip(keep, 0.0, 1.0)

    def train(self, sequences: Iterable[Sequence[str]]) -> "Word2Vec":
        """Train embeddings on token sequences (one sequence per VUC)."""
        rng = np.random.default_rng(self.config.seed)
        keep_probs = self._keep_probs()
        encoded = []
        for seq in sequences:
            ids = self.vocab.encode(seq)
            kept = ids[rng.random(len(ids)) < keep_probs[ids]]
            if len(kept) >= 2:
                encoded.append(kept)
        pairs = self._make_pairs(encoded, rng)
        if len(pairs) == 0:
            self._trained = True
            return self
        noise = self.vocab.unigram_table()
        vocab_size = len(self.vocab)
        total_steps = max(1, self.config.epochs * (len(pairs) // self.config.batch_size + 1))
        step = 0
        for _epoch in range(self.config.epochs):
            order = rng.permutation(len(pairs))
            for start in range(0, len(pairs), self.config.batch_size):
                batch = pairs[order[start:start + self.config.batch_size]]
                if len(batch) == 0:
                    continue
                lr = max(
                    self.config.min_learning_rate,
                    self.config.learning_rate * (1.0 - step / total_steps),
                )
                self._sgd_step(batch, noise, vocab_size, lr, rng)
                step += 1
        self._trained = True
        return self

    def _sgd_step(self, batch: np.ndarray, noise: np.ndarray, vocab_size: int,
                  lr: float, rng: np.random.Generator) -> None:
        centers = batch[:, 0]
        positives = batch[:, 1]
        k = self.config.negatives
        negatives = rng.choice(vocab_size, size=(len(batch), k), p=noise)

        v_center = self.vectors[centers]                          # [B, D]
        v_pos = self.context_vectors[positives]                   # [B, D]
        v_neg = self.context_vectors[negatives]                   # [B, K, D]

        pos_score = _sigmoid(np.einsum("bd,bd->b", v_center, v_pos))
        neg_score = _sigmoid(np.einsum("bkd,bd->bk", v_neg, v_center))

        grad_pos = (pos_score - 1.0)[:, None]                     # [B, 1]
        grad_neg = neg_score[:, :, None]                          # [B, K, 1]

        grad_center = grad_pos * v_pos + np.einsum("bkd,bk->bd", v_neg, neg_score)
        grad_v_pos = grad_pos * v_center
        grad_v_neg = grad_neg * v_center[:, None, :]

        np.add.at(self.vectors, centers, (-lr * grad_center).astype(np.float32))
        np.add.at(self.context_vectors, positives, (-lr * grad_v_pos).astype(np.float32))
        np.add.at(
            self.context_vectors,
            negatives.reshape(-1),
            (-lr * grad_v_neg).reshape(-1, self.config.dim).astype(np.float32),
        )

    # -- lookup --------------------------------------------------------------------

    def __getitem__(self, token: str) -> np.ndarray:
        return self.vectors[self.vocab.id_of(token)]

    def embed_ids(self, ids: np.ndarray) -> np.ndarray:
        return self.vectors[ids]

    def most_similar(self, token: str, topn: int = 5) -> list[tuple[str, float]]:
        """Nearest tokens by cosine similarity (sanity-checking tool)."""
        query = self[token]
        norms = np.linalg.norm(self.vectors, axis=1) + 1e-9
        sims = self.vectors @ query / (norms * (np.linalg.norm(query) + 1e-9))
        order = np.argsort(-sims)
        id_to_token = {i: t for t, i in self.vocab.token_to_id.items()}
        out = []
        for idx in order:
            candidate = id_to_token[int(idx)]
            if candidate == token:
                continue
            out.append((candidate, float(sims[idx])))
            if len(out) == topn:
                break
        return out

    # -- persistence -----------------------------------------------------------------

    def get_state(self) -> dict[str, np.ndarray]:
        """Serializable array dict: vectors, vocab tokens/counts, dim.

        Consumed by :class:`repro.core.artifacts.ModelBundle`; the
        legacy ``save``/``load`` pair below writes the same dict to a
        standalone ``.npz``.
        """
        tokens = list(self.vocab.token_to_id)
        return {
            "vectors": self.vectors,
            "context_vectors": self.context_vectors,
            "tokens": np.asarray(tokens, dtype=object),
            "counts": self.vocab.counts,
            "dim": np.asarray(self.config.dim),
        }

    @classmethod
    def from_state(cls, state: dict[str, np.ndarray]) -> "Word2Vec":
        """Rebuild a trained embedding from a :meth:`get_state` dict."""
        for key in ("vectors", "context_vectors", "tokens", "counts", "dim"):
            if key not in state:
                raise ValueError(f"embedding state lacks array {key!r}")
        vocab = Vocab(
            token_to_id={str(t): i for i, t in enumerate(state["tokens"])},
            counts=np.asarray(state["counts"]),
        )
        model = cls(vocab, Word2VecConfig(dim=int(state["dim"])))
        vectors = np.asarray(state["vectors"])
        context_vectors = np.asarray(state["context_vectors"])
        expected = (len(vocab), model.config.dim)
        if vectors.shape != expected or context_vectors.shape != expected:
            raise ValueError(
                f"embedding arrays have shapes {vectors.shape}/"
                f"{context_vectors.shape}, vocabulary expects {expected}")
        model.vectors = vectors
        model.context_vectors = context_vectors
        model._trained = True
        return model

    def save(self, path: str) -> None:
        np.savez_compressed(path, **self.get_state())

    @classmethod
    def load(cls, path: str) -> "Word2Vec":
        with np.load(path, allow_pickle=True) as data:
            return cls.from_state(dict(data))
