"""One open analysis session: a parsed binary's state, encoded once.

An :class:`AnalysisSession` is what ``POST /v1/session/open`` builds and
the session store holds: the stripped binary, its variable extents, and
— computed exactly once, at open — the located targets, the grouped
per-variable VUC windows with row-aligned access sites, and the encoded
id tensor the engine consumes.  Every subsequent tool call against the
session reuses that state, so the per-question cost of ``type_variable``
or ``annotate_disassembly`` is one small engine call, not a re-parse.

The extraction/encode pass is byte-for-byte the offline
``Cati.infer_binary`` front half (:func:`repro.vuc.dataset
.extract_unlabeled_vucs` with the same window/scope conventions), which
is what makes the session tools' outputs equal to the offline paths.

Reload interplay: the id tensor remembers the engine *generation* it
was encoded under.  The micro-batch scheduler only trusts pre-encoded
ids while the generation still matches and re-encodes from the kept
windows otherwise, so sessions survive ``/v1/reload`` — at the cost of
one re-encode, not a 410.
"""

from __future__ import annotations

import threading
import time

from repro.analysis.render import annotation_variable_ids
from repro.codegen.binary import Binary
from repro.core import observability
from repro.core.config import CatiConfig
from repro.core.errors import FailureReport, RequestError
from repro.vuc.dataflow import AccessSite, VariableExtent

#: Rough per-instruction bookkeeping cost (listing objects + annotation
#: maps) charged into the session's byte estimate.
_INSTRUCTION_OVERHEAD = 96

#: Fixed floor per session (binary/extents envelopes, dict overhead).
_SESSION_OVERHEAD = 4096


class AnalysisSession:
    """Server-side state for one interactive analysis session."""

    def __init__(self, session_id: str, binary: Binary,
                 extents: list[list[VariableExtent]], *,
                 windows: list, variable_ids: list[str],
                 sites: list[AccessSite], ids, generation: int,
                 annotations: list[dict[int, str]]) -> None:
        self.session_id = session_id
        self.binary = binary
        self.extents = extents
        self.windows = windows
        self.variable_ids = variable_ids
        self.sites = sites
        #: Pre-encoded [N, L, 3] id tensor + the engine generation it
        #: was encoded under (None ids only when the binary had no VUCs).
        self.ids = ids
        self.ids_generation = generation
        #: Per function: instruction index → variable id (Fig. 2 joins).
        self.annotations = annotations
        #: variable id → row indices into windows/ids/sites, extraction
        #: order — a per-variable slice votes identically to the full
        #: matrix because eq. 3-4's vote is per-variable independent.
        self.rows: dict[str, list[int]] = {}
        for row, variable_id in enumerate(variable_ids):
            self.rows.setdefault(variable_id, []).append(row)
        self.created_at = time.time()
        self.nbytes = self._estimate_nbytes()
        self._lock = threading.Lock()
        self._probs = None
        self._predictions: list | None = None
        self._scored_generation: int | None = None

    def _estimate_nbytes(self) -> int:
        from repro.core.types import ALL_TYPES

        ids_bytes = int(self.ids.nbytes) if self.ids is not None else 0
        # Reserve the cached leaf-posterior matrix up front so the LRU
        # budget accounts for a session's full resident cost at open.
        probs_bytes = len(self.windows) * len(ALL_TYPES) * 8
        listing_bytes = sum(len(func.instructions) * _INSTRUCTION_OVERHEAD
                            for func in self.binary.functions)
        return _SESSION_OVERHEAD + ids_bytes + probs_bytes + listing_bytes

    # -- lookups ---------------------------------------------------------------------

    def variable_rows(self, variable_id: str) -> list[int]:
        rows = self.rows.get(variable_id)
        if rows is None:
            raise RequestError(
                f"session {self.session_id} has no variable {variable_id!r} "
                f"({len(self.rows)} known; list them with list_functions)",
                stage="serve")
        return rows

    def function_by_ref(self, ref) -> tuple[int, object]:
        """Resolve a function by index or name; ``(index, listing)``."""
        functions = self.binary.functions
        if isinstance(ref, str) and not ref.lstrip("-").isdigit():
            for index, func in enumerate(functions):
                if func.name == ref:
                    return index, func
            raise RequestError(
                f"session {self.session_id} has no function named {ref!r}",
                stage="serve")
        try:
            index = int(ref)
        except (TypeError, ValueError) as error:
            raise RequestError(
                f"'function' must be an index or name, got {ref!r}",
                stage="serve") from error
        if not 0 <= index < len(functions):
            raise RequestError(
                f"function index {index} out of range "
                f"(binary has {len(functions)} functions)", stage="serve")
        return index, functions[index]

    def function_variables(self, func_index: int) -> list[str]:
        """This function's variable ids, first-located order, de-duplicated."""
        seen: dict[str, None] = {}
        for variable_id in self.annotations[func_index].values():
            seen.setdefault(variable_id)
        return list(seen)

    # -- scoring ---------------------------------------------------------------------

    def ensure_scored(self, daemon):
        """The session's full (probs, predictions), computed once per generation.

        Goes through the daemon's micro-batch scheduler (so a reload
        mid-flight re-encodes, and concurrent sessions coalesce); the
        cache is invalidated when the engine generation moves.
        """
        _cati, _engine, generation = daemon.model_host.acquire()
        with self._lock:
            if self._probs is not None and self._scored_generation == generation:
                return self._probs, self._predictions
        pending = daemon.scheduler.submit(
            self.windows, self.variable_ids,
            deadline_s=daemon.default_deadline_s,
            ids=self.ids, generation=self.ids_generation)
        predictions = daemon.scheduler.wait(
            pending, timeout=daemon.default_deadline_s)
        with self._lock:
            self._probs = pending.probs
            self._predictions = predictions
            self._scored_generation = generation
        return self._probs, self._predictions


def build_session(session_id: str, stripped: Binary,
                  extents: list[list[VariableExtent]], *,
                  encoder, config: CatiConfig, generation: int,
                  on_error: str = "skip",
                  failures: FailureReport | None = None) -> AnalysisSession:
    """Open-time pass: extract, group, encode — once — into a session."""
    from repro.vuc.dataset import extract_unlabeled_vucs

    sites: list[AccessSite] = []
    with observability.span("sessions.extract"):
        pairs = extract_unlabeled_vucs(
            stripped, extents, config.window, on_error=on_error,
            failures=failures, metrics=config.metrics_enabled, sites=sites)
    windows = [tokens for _variable_id, tokens in pairs]
    variable_ids = [variable_id for variable_id, _tokens in pairs]
    ids = (encoder.encode_ids(windows, length=config.vuc_length)
           if windows else None)
    extracted = set(variable_ids)
    annotations: list[dict[int, str]] = []
    for func_index, func in enumerate(stripped.functions):
        func_extents = (extents[func_index]
                        if func_index < len(extents) else [])
        mapping: dict[int, str] = {}
        if func_extents:
            try:
                mapping = annotation_variable_ids(
                    func, func_extents, f"{stripped.name}/{func_index}")
            except Exception:  # noqa: BLE001 — extraction already recorded it
                # A function the fault-isolated extraction pass skipped
                # fails the same way here; it contributed no windows, so
                # it gets no annotations either.
                mapping = {}
        # Keep only ids extraction actually produced windows for, so the
        # annotate join never names a variable the vote cannot type.
        annotations.append({index: variable_id
                            for index, variable_id in mapping.items()
                            if variable_id in extracted})
    return AnalysisSession(
        session_id, stripped, extents, windows=windows,
        variable_ids=variable_ids, sites=sites, ids=ids,
        generation=generation, annotations=annotations)


__all__ = ["AnalysisSession", "build_session"]
