"""Shared text renderers for analysis output (Fig. 2 listings, eq. 5 ε).

The session tools (:mod:`repro.analysis.tools`) and the offline example
scripts (``examples/annotate_disassembly.py``,
``examples/explain_prediction.py``) both render through these helpers,
so "served output equals offline output" is a *byte* equality the tests
can assert on the rendered lines, not an approximate one.
"""

from __future__ import annotations

from repro.asm.instruction import FunctionListing
from repro.vuc import group_targets, locate_targets, tokens_to_text
from repro.vuc.dataflow import VariableExtent


def annotation_variable_ids(func: FunctionListing,
                            extents: list[VariableExtent],
                            scope: str) -> dict[int, str]:
    """Instruction index → variable id for one function's located targets.

    Runs the same locate/group pass extraction runs
    (:func:`repro.vuc.dataset.extract_unlabeled_vucs` uses the identical
    ``scope`` convention, ``"{binary}/{func_index}"``), so the ids here
    join exactly against per-variable predictions.
    """
    targets = locate_targets(func)
    mapping: dict[int, str] = {}
    for group in group_targets(targets, extents, scope):
        for target in group.targets:
            mapping[target.index] = group.variable_id
    return mapping


def render_listing(func: FunctionListing,
                   annotation: dict[int, str] | None = None) -> list[str]:
    """Fig. 2-style disassembly lines, type comments inline when given."""
    notes = annotation or {}
    return [f"  {ins.address:6x}:  {str(ins):42s} {notes.get(index, '')}"
            for index, ins in enumerate(func.instructions)]


def render_epsilons(window, epsilons) -> list[str]:
    """Fig. 6-style per-instruction ε lines for one VUC window.

    ``'#'`` bars mark instructions whose removal hurts the prediction;
    the center row (the located target) is flagged.
    """
    center = len(window) // 2
    lines = [f"{'epsilon':>8s}  instruction"]
    for position, (eps, tokens) in enumerate(zip(epsilons, window)):
        eps = float(eps)
        marker = "  <= target" if position == center else ""
        bar = "#" * int(max(0.0, (1.0 - min(eps, 1.0))) * 20)
        lines.append(f"{eps:8.4f}  {tokens_to_text(tokens):40s} {bar}{marker}")
    return lines
