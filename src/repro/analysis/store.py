"""The bounded, TTL-evicted session store + session-id slot hashing.

:class:`SessionStore` holds open :class:`~repro.analysis.session
.AnalysisSession` objects server-side, keyed by id, under one lock —
handler threads (http.server spawns one per connection) and the
micro-batch scheduler's worker all touch sessions concurrently.  Two
bounds keep a long-lived daemon safe:

* **TTL** (``CatiConfig.session_ttl_s``): a session idle past the TTL
  is dropped on the next store access — any access, not just its own,
  so abandoned sessions cannot linger behind an idle id.
* **Byte cap** (``CatiConfig.session_max_bytes``): inserting past the
  budget evicts least-recently-used sessions until the store fits
  (the session just inserted is never evicted by its own insert — a
  single oversized session still serves, it just owns the store).

Every way out of the store is observable: ``sessions.opened`` /
``sessions.closed`` / ``sessions.evicted.ttl`` / ``sessions.evicted.lru``
counters, plus ``sessions.count`` / ``sessions.bytes`` gauges.  The
same numbers back ``/healthz``'s ``sessions`` block via :meth:`stats`
(kept as plain ints here so health stays truthful even with the metrics
registry disabled).

**Slot hashing.** Under ``--workers N`` sessions are sticky: state
lives in exactly one worker process.  :func:`session_slot` maps a
session id to its owning slot with CRC-32 (Python's ``hash()`` is
randomized per process, so it cannot route consistently between router
and workers), and :func:`mint_session_id` has each worker mint only ids
that hash back to itself — so the router can route ``/v1/session/<id>/*``
by pure arithmetic, with no shared session table.
"""

from __future__ import annotations

import secrets
import threading
import time
import zlib
from collections import OrderedDict

from repro.core import observability
from repro.core.errors import SessionGoneError


def session_slot(session_id: str, n_slots: int) -> int:
    """The worker slot owning ``session_id`` (stable across processes)."""
    return zlib.crc32(session_id.encode("utf-8")) % max(1, n_slots)


def mint_session_id(slot_index: int = 0, slot_count: int = 1) -> str:
    """A fresh session id that :func:`session_slot` maps to ``slot_index``.

    Rejection-samples random ids (expected ``slot_count`` draws); a
    single daemon is slot 0 of 1, where every id matches.
    """
    slot_count = max(1, slot_count)
    slot_index = slot_index % slot_count
    while True:
        candidate = secrets.token_hex(8)
        if session_slot(candidate, slot_count) == slot_index:
            return candidate


class SessionStore:
    """TTL + LRU-by-bytes bounded map of open analysis sessions."""

    def __init__(self, *, ttl_s: float = 600.0,
                 max_bytes: int = 256 * 1024 * 1024,
                 clock=time.monotonic) -> None:
        if ttl_s <= 0:
            raise ValueError("ttl_s must be > 0")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.ttl_s = float(ttl_s)
        self.max_bytes = int(max_bytes)
        self._clock = clock
        self._lock = threading.Lock()
        #: id → (session, last-used stamp); order = LRU (oldest first).
        self._entries: OrderedDict[str, list] = OrderedDict()
        self._bytes = 0
        self._opened = 0
        self._closed = 0
        self._evicted_ttl = 0
        self._evicted_lru = 0

    # -- internals (call with the lock held) --------------------------------------

    def _drop_locked(self, session_id: str) -> None:
        session, _stamp = self._entries.pop(session_id)
        self._bytes -= session.nbytes

    def _sweep_locked(self, now: float) -> None:
        expired = [session_id for session_id, (_s, stamp) in self._entries.items()
                   if now - stamp > self.ttl_s]
        for session_id in expired:
            self._drop_locked(session_id)
            self._evicted_ttl += 1
        if expired:
            observability.inc("sessions.evicted.ttl", len(expired))

    def _publish_gauges_locked(self) -> None:
        observability.set_gauge("sessions.count", len(self._entries))
        observability.set_gauge("sessions.bytes", self._bytes)

    # -- the store API --------------------------------------------------------------

    def put(self, session) -> None:
        """Insert (or replace) a session; evict LRU past the byte budget."""
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            if session.session_id in self._entries:
                self._drop_locked(session.session_id)
            self._entries[session.session_id] = [session, now]
            self._bytes += session.nbytes
            self._opened += 1
            observability.inc("sessions.opened")
            # LRU eviction: oldest first, never the session just put —
            # an oversized session owns the store rather than thrashing.
            evicted = 0
            while self._bytes > self.max_bytes and len(self._entries) > 1:
                victim = next(iter(self._entries))
                if victim == session.session_id:
                    break
                self._drop_locked(victim)
                self._evicted_lru += 1
                evicted += 1
            if evicted:
                observability.inc("sessions.evicted.lru", evicted)
            self._publish_gauges_locked()

    def get(self, session_id: str):
        """Look up + touch a session; :class:`SessionGoneError` otherwise."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(session_id)
            if entry is not None and now - entry[1] > self.ttl_s:
                self._drop_locked(session_id)
                self._evicted_ttl += 1
                observability.inc("sessions.evicted.ttl")
                self._publish_gauges_locked()
                entry = None
            if entry is None:
                self._sweep_locked(now)
                self._publish_gauges_locked()
                raise SessionGoneError(
                    f"no session {session_id!r} on this server (expired, "
                    "evicted, lost to a worker restart, or never opened); "
                    "re-open the session and retry", stage="serve")
            entry[1] = now
            self._entries.move_to_end(session_id)
            return entry[0]

    def remove(self, session_id: str) -> bool:
        """Explicit close; True when the session was present."""
        with self._lock:
            if session_id not in self._entries:
                return False
            self._drop_locked(session_id)
            self._closed += 1
            observability.inc("sessions.closed")
            self._publish_gauges_locked()
            return True

    def stats(self) -> dict:
        """The ``/healthz`` ``sessions`` block (plain ints, lock-consistent)."""
        with self._lock:
            self._sweep_locked(self._clock())
            return {
                "sessions": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "ttl_s": self.ttl_s,
                "opened": self._opened,
                "closed": self._closed,
                "evicted_ttl": self._evicted_ttl,
                "evicted_lru": self._evicted_lru,
            }


__all__ = ["SessionStore", "mint_session_id", "session_slot"]
