"""The session tool surface: one dispatch table, six tools.

``POST /v1/session/<id>/call`` bodies are ``{"tool": <name>, "args":
{...}}`` (schema ``cati-tool-call/1``); :func:`call_tool` dispatches to
the handlers below, each of which returns the JSON-ready ``result``
object.  The tools are the CATI primitives reverse-engineering
assistants consume:

* ``list_functions``        — the binary's functions + their variables;
* ``disassemble``           — one function's raw listing;
* ``type_variable``         — eq. 3-4 vote for one variable, through
  the micro-batcher's small-batch path (this is the single-question
  interactive workload the scheduler's delay budget bounds);
* ``explain``               — eq. 5 occlusion ε per instruction of one
  of the variable's VUCs, on the id-level batched engine path;
* ``annotate_disassembly``  — the Fig. 2 listing with inferred types
  inline;
* ``struct_layouts``        — the posterior struct-recovery stage
  scoped to this session's binary.

Handlers raise :class:`~repro.core.errors.RequestError` (400) for bad
arguments; anything session-existence shaped was already settled by the
store lookup before dispatch.  ``repro.serve`` is imported lazily
inside functions — the serve server imports this package at module
level, so the reverse edge must stay function-local.
"""

from __future__ import annotations

from repro.analysis.render import render_epsilons, render_listing
from repro.analysis.session import AnalysisSession
from repro.core.errors import RequestError


def _tool_list_functions(daemon, session: AnalysisSession, args: dict) -> dict:
    functions = []
    for index, func in enumerate(session.binary.functions):
        functions.append({
            "index": index,
            "name": func.name,
            "address": func.address,
            "n_instructions": len(func.instructions),
            "variables": session.function_variables(index),
        })
    return {
        "binary": session.binary.name,
        "n_functions": len(functions),
        "n_variables": len(session.rows),
        "functions": functions,
    }


def _tool_disassemble(daemon, session: AnalysisSession, args: dict) -> dict:
    index, func = session.function_by_ref(args.get("function", 0))
    return {
        "function": func.name,
        "index": index,
        "address": func.address,
        "lines": render_listing(func),
    }


def _tool_type_variable(daemon, session: AnalysisSession, args: dict) -> dict:
    from repro.serve import protocol

    variable_id = args.get("variable_id")
    if not isinstance(variable_id, str):
        raise RequestError("'variable_id' must be a string", stage="serve")
    rows = session.variable_rows(variable_id)
    windows = [session.windows[row] for row in rows]
    ids = session.ids[rows] if session.ids is not None else None
    # One variable's windows through the scheduler: the small-batch path
    # the interactive latency benchmark measures.  A per-variable slice
    # votes identically to the full-binary matrix (eq. 3-4 sums per
    # variable), so this equals the offline prediction byte-for-byte.
    pending = daemon.scheduler.submit(
        windows, [variable_id] * len(rows),
        deadline_s=daemon.default_deadline_s,
        ids=ids, generation=session.ids_generation)
    predictions = daemon.scheduler.wait(pending,
                                        timeout=daemon.default_deadline_s)
    return {
        "variable_id": variable_id,
        "prediction": protocol.prediction_to_dict(predictions[0]),
    }


def _tool_explain(daemon, session: AnalysisSession, args: dict) -> dict:
    from repro.core.types import ALL_TYPES

    variable_id = args.get("variable_id")
    if not isinstance(variable_id, str):
        raise RequestError("'variable_id' must be a string", stage="serve")
    rows = session.variable_rows(variable_id)
    try:
        vuc = int(args.get("vuc", 0))
    except (TypeError, ValueError) as error:
        raise RequestError("'vuc' must be an integer index",
                           stage="serve") from error
    if not 0 <= vuc < len(rows):
        raise RequestError(
            f"variable {variable_id!r} has {len(rows)} VUCs; "
            f"'vuc' {vuc} is out of range", stage="serve")
    window = session.windows[rows[vuc]]
    _cati, engine, _generation = daemon.model_host.acquire()
    batched = engine.occlusion_epsilons_many([window])
    epsilons = batched.epsilons[0]
    return {
        "variable_id": variable_id,
        "vuc": vuc,
        "n_vucs": len(rows),
        "predicted": str(ALL_TYPES[int(batched.predicted_indices[0])]),
        "base_confidence": float(batched.base_confidences[0]),
        "epsilons": [float(eps) for eps in epsilons],
        "lines": render_epsilons(window, epsilons),
    }


def _tool_annotate_disassembly(daemon, session: AnalysisSession,
                               args: dict) -> dict:
    index, func = session.function_by_ref(args.get("function", 0))
    _probs, predictions = session.ensure_scored(daemon)
    types_by_id = {p.variable_id: str(p.predicted) for p in predictions}
    annotation = {ins_index: types_by_id[variable_id]
                  for ins_index, variable_id in session.annotations[index].items()
                  if variable_id in types_by_id}
    return {
        "function": func.name,
        "index": index,
        "lines": render_listing(func, annotation),
        "annotations": [
            {"index": ins_index,
             "variable_id": variable_id,
             "type": types_by_id[variable_id]}
            for ins_index, variable_id in sorted(session.annotations[index].items())
            if variable_id in types_by_id
        ],
    }


def _tool_struct_layouts(daemon, session: AnalysisSession, args: dict) -> dict:
    from repro.posterior.layouts import recover_layouts
    from repro.serve import protocol

    probs, predictions = session.ensure_scored(daemon)
    config = daemon.model_host.config
    layouts = recover_layouts(
        predictions, probs, session.variable_ids, session.sites,
        threshold=config.confidence_threshold,
        min_accesses=config.posterior_min_accesses)
    return {
        "binary": session.binary.name,
        "n_layouts": len(layouts),
        "layouts": [protocol.layout_to_dict(layout) for layout in layouts],
    }


_TOOLS = {
    "list_functions": _tool_list_functions,
    "disassemble": _tool_disassemble,
    "type_variable": _tool_type_variable,
    "explain": _tool_explain,
    "annotate_disassembly": _tool_annotate_disassembly,
    "struct_layouts": _tool_struct_layouts,
}

#: Public tool names, dispatch order (docs/clients enumerate these).
TOOL_NAMES = tuple(_TOOLS)


def call_tool(daemon, session: AnalysisSession, tool: str, args: dict) -> dict:
    """Dispatch one tool call against an open session."""
    handler = _TOOLS.get(tool)
    if handler is None:
        raise RequestError(
            f"unknown tool {tool!r}; available: {', '.join(TOOL_NAMES)}",
            stage="serve")
    if not isinstance(args, dict):
        raise RequestError("'args' must be a JSON object", stage="serve")
    return handler(daemon, session, args)


__all__ = ["TOOL_NAMES", "call_tool"]
