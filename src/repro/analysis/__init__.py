"""repro.analysis — stateful interactive analysis sessions.

The session subsystem behind ``POST /v1/session/*`` and ``repro repl``:
open a binary once (parse → locate → group → window → encode), hold
that state server-side, and answer per-question tools against it at
interactive latency.

* :mod:`repro.analysis.session` — :class:`AnalysisSession` (the state)
  and :func:`build_session` (the open-time extraction/encode pass);
* :mod:`repro.analysis.store` — the bounded :class:`SessionStore`
  (TTL + LRU-by-bytes eviction, metrics-instrumented) and the
  :func:`session_slot` hashing that makes sessions sticky under the
  pre-fork router;
* :mod:`repro.analysis.tools` — the ``cati-tool-call/1`` dispatch
  table: ``list_functions``, ``disassemble``, ``type_variable``,
  ``explain``, ``annotate_disassembly``, ``struct_layouts``;
* :mod:`repro.analysis.render` — the Fig. 2 listing / Fig. 6 ε text
  renderers shared with the offline example scripts, so served output
  is byte-identical to the in-process paths.

This package never imports :mod:`repro.serve` at module level (the
serve server imports *it*); the tool handlers reach the wire-format
serializers lazily.
"""

from repro.analysis.session import AnalysisSession, build_session
from repro.analysis.store import SessionStore, mint_session_id, session_slot
from repro.analysis.tools import TOOL_NAMES, call_tool

__all__ = [
    "AnalysisSession",
    "SessionStore",
    "TOOL_NAMES",
    "build_session",
    "call_tool",
    "mint_session_id",
    "session_slot",
]
