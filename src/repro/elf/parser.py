"""ELF64 object-file parser (pure Python, read-only).

Parses just what the binary-analysis pipeline needs: the ELF header,
the section header table (with names resolved through ``.shstrtab``),
section contents, and the symbol table.  This removes the dependency on
``readelf`` for section access and lets :mod:`repro.dwarf.native` parse
debug information straight from the file bytes.

Layout references: the System V ABI / ELF-64 object file format.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import DecodeError, FailureReport, handle_failure

ELF_MAGIC = b"\x7fELF"

#: e_ident offsets
EI_CLASS = 4
EI_DATA = 5
ELFCLASS64 = 2
ELFDATA2LSB = 1

#: section header types we care about
SHT_SYMTAB = 2
SHT_STRTAB = 3

#: symbol-table entry constants
STT_FUNC = 2
STT_OBJECT = 1


class ElfParseError(DecodeError):
    """Raised on malformed or unsupported ELF input."""


@dataclass(frozen=True, slots=True)
class Section:
    """One ELF section: its header fields and raw contents."""

    name: str
    sh_type: int
    addr: int
    offset: int
    size: int
    link: int
    entsize: int
    data: bytes


@dataclass(frozen=True, slots=True)
class Symbol:
    """One symbol-table entry."""

    name: str
    value: int
    size: int
    info: int
    shndx: int

    @property
    def type(self) -> int:
        return self.info & 0xF

    @property
    def is_function(self) -> bool:
        return self.type == STT_FUNC


class ElfFile:
    """A parsed 64-bit little-endian ELF file.

    ``on_error="skip"`` tolerates a damaged section header table:
    headers that run past the end of the file (or a bogus
    ``.shstrtab`` index) are recorded into :attr:`failures` and the
    parse continues with whatever sections survive, instead of dying on
    the first truncated byte.  The ELF identification header itself must
    always be intact — without it nothing else can be located.
    """

    def __init__(self, data: bytes, on_error: str = "raise",
                 failures: FailureReport | None = None) -> None:
        if len(data) < 64 or data[:4] != ELF_MAGIC:
            raise ElfParseError("not an ELF file", stage="elf")
        if data[EI_CLASS] != ELFCLASS64:
            raise ElfParseError("only ELF64 is supported", stage="elf")
        if data[EI_DATA] != ELFDATA2LSB:
            raise ElfParseError("only little-endian ELF is supported", stage="elf")
        self.data = data
        self.failures = failures if failures is not None else FailureReport()
        (
            self.e_type, self.e_machine, _version, self.e_entry,
            _phoff, e_shoff, _flags, _ehsize, _phentsize, _phnum,
            e_shentsize, e_shnum, e_shstrndx,
        ) = struct.unpack_from("<HHIQQQIHHHHHH", data, 16)
        self.sections = self._parse_sections(
            e_shoff, e_shentsize, e_shnum, e_shstrndx, on_error)
        self._by_name = {s.name: s for s in self.sections}

    @classmethod
    def load(cls, path: str | Path, on_error: str = "raise",
             failures: FailureReport | None = None) -> "ElfFile":
        return cls(Path(path).read_bytes(), on_error=on_error, failures=failures)

    # -- sections ----------------------------------------------------------------

    def _parse_sections(self, shoff: int, entsize: int, count: int,
                        shstrndx: int, on_error: str) -> list[Section]:
        if shoff == 0 or count == 0:
            return []
        if entsize < 64:
            handle_failure(
                ElfParseError(f"section header entry size {entsize} too small"),
                on_error=on_error, failures=self.failures, stage="elf")
            return []
        raw = []
        for index in range(count):
            base = shoff + index * entsize
            if base + 64 > len(self.data):
                handle_failure(
                    ElfParseError(
                        f"section header table out of bounds "
                        f"(entry {index} of {count})"),
                    on_error=on_error, failures=self.failures, stage="elf")
                break
            (name_off, sh_type, _flags, addr, offset, size, link,
             _info, _align, sh_entsize) = struct.unpack_from("<IIQQQQIIQQ", self.data, base)
            raw.append((name_off, sh_type, addr, offset, size, link, sh_entsize))
        if not raw:
            return []
        if not 0 <= shstrndx < len(raw):
            handle_failure(
                ElfParseError(f"bad section name string table index {shstrndx}"),
                on_error=on_error, failures=self.failures, stage="elf")
            str_off = str_size = 0
        else:
            str_off, str_size = raw[shstrndx][3], raw[shstrndx][4]
        shstrtab = self.data[str_off:str_off + str_size]

        def section_name(name_off: int) -> str:
            end = shstrtab.find(b"\x00", name_off)
            return shstrtab[name_off:end].decode("utf-8", "replace")

        sections = []
        for name_off, sh_type, addr, offset, size, link, sh_entsize in raw:
            contents = b"" if sh_type == 8 else self.data[offset:offset + size]  # SHT_NOBITS
            sections.append(Section(
                name=section_name(name_off), sh_type=sh_type, addr=addr,
                offset=offset, size=size, link=link, entsize=sh_entsize,
                data=contents,
            ))
        return sections

    def section(self, name: str) -> Section | None:
        """Look up a section by name (``.text``, ``.debug_info``, ...)."""
        return self._by_name.get(name)

    def section_data(self, name: str) -> bytes:
        """Contents of a named section; empty bytes when absent."""
        section = self.section(name)
        return section.data if section is not None else b""

    @property
    def has_debug_info(self) -> bool:
        return bool(self.section_data(".debug_info")) and bool(self.section_data(".debug_abbrev"))

    # -- symbols ------------------------------------------------------------------

    def symbols(self) -> list[Symbol]:
        """Parse ``.symtab`` (or fall back to ``.dynsym``)."""
        table = self.section(".symtab") or self.section(".dynsym")
        if table is None or table.entsize < 24:
            return []
        strtab = self.sections[table.link].data if table.link < len(self.sections) else b""

        def symbol_name(offset: int) -> str:
            end = strtab.find(b"\x00", offset)
            return strtab[offset:end].decode("utf-8", "replace")

        out = []
        for base in range(0, len(table.data) - 23, table.entsize):
            name_off, info, _other, shndx, value, size = struct.unpack_from(
                "<IBBHQQ", table.data, base,
            )
            out.append(Symbol(
                name=symbol_name(name_off), value=value, size=size,
                info=info, shndx=shndx,
            ))
        return out

    def function_symbols(self) -> list[Symbol]:
        """Defined function symbols with a non-zero size, sorted by address."""
        functions = [
            s for s in self.symbols()
            if s.is_function and s.size > 0 and s.shndx != 0 and s.name
        ]
        return sorted(functions, key=lambda s: s.value)

    def dynamic_symbols(self) -> list[Symbol]:
        """Parse ``.dynsym`` entries (names from ``.dynstr``)."""
        table = self.section(".dynsym")
        if table is None or table.entsize < 24:
            return []
        strtab = self.sections[table.link].data if table.link < len(self.sections) else b""

        def symbol_name(offset: int) -> str:
            end = strtab.find(b"\x00", offset)
            return strtab[offset:end].decode("utf-8", "replace")

        out = []
        for base in range(0, len(table.data) - 23, table.entsize):
            name_off, info, _other, shndx, value, size = struct.unpack_from(
                "<IBBHQQ", table.data, base,
            )
            out.append(Symbol(name=symbol_name(name_off), value=value, size=size,
                              info=info, shndx=shndx))
        return out

    def plt_map(self) -> dict[int, str]:
        """Map PLT stub addresses to ``name@plt`` import names.

        Walks ``.rela.plt`` (GOT slot → dynamic symbol) and then scans
        each 16-byte stub of ``.plt``/``.plt.sec`` for its ``jmp
        *disp(%rip)`` (ff 25) to find which GOT slot it dispatches
        through — the standard lazy-PLT layout gcc and clang emit.
        """
        rela = self.section(".rela.plt")
        if rela is None:
            return {}
        dynsyms = self.dynamic_symbols()
        got_to_name: dict[int, str] = {}
        for base in range(0, len(rela.data) - 23, 24):
            r_offset, r_info, _addend = struct.unpack_from("<QQq", rela.data, base)
            sym_index = r_info >> 32
            if 0 <= sym_index < len(dynsyms) and dynsyms[sym_index].name:
                got_to_name[r_offset] = dynsyms[sym_index].name + "@plt"

        out: dict[int, str] = {}
        for section_name in (".plt.sec", ".plt"):
            section = self.section(section_name)
            if section is None:
                continue
            for stub_off in range(0, len(section.data) - 15, 16):
                stub = section.data[stub_off:stub_off + 16]
                position = stub.find(b"\xff\x25")
                if position < 0 or position + 6 > len(stub):
                    continue
                disp = struct.unpack_from("<i", stub, position + 2)[0]
                target = section.addr + stub_off + position + 6 + disp
                name = got_to_name.get(target)
                stub_addr = section.addr + stub_off
                if name is not None and stub_addr not in out:
                    out[stub_addr] = name
        # Prefer .plt.sec stubs (the call targets) over .plt when both map.
        return out

    def text_bytes_for(self, symbol: Symbol) -> bytes:
        """The machine-code bytes of one function symbol."""
        text = self.section(".text")
        if text is None:
            return b""
        start = symbol.value - text.addr
        if start < 0 or start + symbol.size > len(text.data):
            return b""
        return text.data[start:start + symbol.size]
