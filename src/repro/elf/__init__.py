"""Pure-Python read-only ELF64 parser: sections, symbols, function
bytes.  Used by :mod:`repro.dwarf.native` to read real debug sections
without external tools.
"""

from repro.elf.parser import ElfFile, ElfParseError, Section, Symbol

__all__ = ["ElfFile", "ElfParseError", "Section", "Symbol"]
