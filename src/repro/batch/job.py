"""The on-disk half of a batch job: checkpoints, attempts, quarantine.

Layout of a job directory::

    <job-dir>/
    ├── job.json               spec + config snapshot + model identity
    ├── shards/shard-0007.json committed per-shard checkpoints
    ├── attempts/shard-0007    crash-surviving attempt counters
    ├── quarantine/shard-0007.json   poisoned shards, with their history
    ├── faults/<fault-id>      persisted fault-injection fire counters
    └── results.json           merged output, written once on completion

Durability contract:

* **checkpoints commit atomically** (:func:`repro.core.fsutil
  .atomic_write`) and are wrapped in a self-checksum envelope
  (``{"format", "sha256", "payload"}`` where ``sha256`` digests the
  canonical JSON of the payload), so a reader can distinguish "never
  written" from "partially written" from "committed" — a torn or
  tampered checkpoint is *detected*, counted, and recomputed, never
  trusted;
* **attempt counters are bumped and fsynced BEFORE the shard runs**, so
  a shard that SIGKILLs the process still consumes an attempt on
  resume; a shard whose counter exceeds ``max_retries + 1`` without a
  committed checkpoint is quarantined instead of re-run forever
  (poison-shard protection);
* **checkpoints bind to their inputs**: the payload records
  ``inputs_sha256`` (shard items + model content key); a checkpoint
  whose digest does not match the current job is stale and ignored.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path

from repro.batch.spec import JobSpec, canonical_json, sha256_hex
from repro.core import observability
from repro.core.errors import BatchError
from repro.core.fsutil import atomic_write

logger = logging.getLogger(__name__)

JOB_FORMAT = "cati-batch-job/1"
CHECKPOINT_FORMAT = "cati-batch-checkpoint/1"


def _shard_name(index: int) -> str:
    return f"shard-{index:04d}"


class BatchJobStore:
    """Filesystem state machine for one batch job."""

    def __init__(self, job_dir: str | Path) -> None:
        self.job_dir = Path(job_dir)
        self.shards_dir = self.job_dir / "shards"
        self.attempts_dir = self.job_dir / "attempts"
        self.quarantine_dir = self.job_dir / "quarantine"
        self.faults_dir = self.job_dir / "faults"

    # -- creation / opening ------------------------------------------------------

    @property
    def job_path(self) -> Path:
        return self.job_dir / "job.json"

    @property
    def results_path(self) -> Path:
        return self.job_dir / "results.json"

    def exists(self) -> bool:
        return self.job_path.exists()

    def create(self, spec: JobSpec, *, config: dict, model_dir: str,
               model_key: str, cache_dir: str | None) -> dict:
        """Persist a new job; refuses to clobber an existing one."""
        if self.exists():
            raise BatchError(
                f"{self.job_dir} already holds a job; use 'batch resume' "
                "(or point --job-dir somewhere fresh)",
                job_dir=str(self.job_dir), stage="batch")
        for directory in (self.shards_dir, self.attempts_dir,
                          self.quarantine_dir, self.faults_dir):
            directory.mkdir(parents=True, exist_ok=True)
        body = {
            "format": JOB_FORMAT,
            "spec": spec.to_dict(),
            "config": config,
            "model_dir": str(model_dir),
            "model_key": model_key,
            "cache_dir": cache_dir,
        }
        atomic_write(self.job_path, json.dumps(body, indent=2, sort_keys=True))
        return body

    def open(self) -> dict:
        """Load and validate ``job.json``."""
        try:
            body = json.loads(self.job_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise BatchError(
                f"{self.job_dir} holds no job.json; run 'batch run' first",
                job_dir=str(self.job_dir), stage="batch") from None
        except (OSError, ValueError) as error:
            raise BatchError(
                f"{self.job_path} is unreadable: {error}",
                job_dir=str(self.job_dir), stage="batch") from error
        if not isinstance(body, dict) or body.get("format") != JOB_FORMAT:
            raise BatchError(
                f"{self.job_path} is not a {JOB_FORMAT} document",
                job_dir=str(self.job_dir), stage="batch")
        for directory in (self.shards_dir, self.attempts_dir,
                          self.quarantine_dir, self.faults_dir):
            directory.mkdir(parents=True, exist_ok=True)
        return body

    # -- checkpoints -------------------------------------------------------------

    def checkpoint_path(self, index: int) -> Path:
        return self.shards_dir / f"{_shard_name(index)}.json"

    def write_checkpoint(self, index: int, payload: dict) -> None:
        """Commit one shard's results atomically, self-checksummed."""
        envelope = {
            "format": CHECKPOINT_FORMAT,
            "sha256": sha256_hex(canonical_json(payload)),
            "payload": payload,
        }
        atomic_write(self.checkpoint_path(index), json.dumps(envelope))
        observability.inc("batch.checkpoints.committed")

    def read_checkpoint(self, index: int, *,
                        expected_inputs: str | None = None) -> dict | None:
        """A shard's committed payload, or ``None`` with the reason logged.

        ``None`` covers three distinct situations, each counted
        separately: the checkpoint was never written; it exists but is
        torn/corrupt (partial write detected via the envelope checksum);
        or it is valid but stale (``inputs_sha256`` no longer matches
        ``expected_inputs`` — manifest or model drift).
        """
        path = self.checkpoint_path(index)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as error:
            logger.warning("checkpoint %s unreadable (%s); will recompute",
                           path.name, error)
            observability.inc("batch.checkpoints.invalid")
            return None
        try:
            envelope = json.loads(raw)
            assert isinstance(envelope, dict)
            assert envelope.get("format") == CHECKPOINT_FORMAT
            payload = envelope["payload"]
            valid = envelope.get("sha256") == sha256_hex(canonical_json(payload))
        except (ValueError, KeyError, AssertionError):
            valid = False
            payload = None
        if not valid:
            logger.warning(
                "checkpoint %s is partial or corrupt; discarding and "
                "recomputing the shard", path.name)
            observability.inc("batch.checkpoints.invalid")
            return None
        if (expected_inputs is not None
                and payload.get("inputs_sha256") != expected_inputs):
            logger.warning(
                "checkpoint %s was computed from different inputs "
                "(manifest or model drift); recomputing", path.name)
            observability.inc("batch.checkpoints.stale")
            return None
        return payload

    # -- attempts / quarantine ---------------------------------------------------

    def attempts_path(self, index: int) -> Path:
        return self.attempts_dir / _shard_name(index)

    def attempts(self, index: int) -> int:
        try:
            return int(self.attempts_path(index).read_text())
        except (OSError, ValueError):
            return 0

    def bump_attempts(self, index: int) -> int:
        """Charge one attempt, durably, *before* the shard runs.

        The fsynced write ordering is the crash-accounting invariant: if
        the process dies mid-shard, the consumed attempt is already on
        disk, so a poisoned shard cannot SIGKILL the job forever — the
        resume path sees the count and quarantines it.
        """
        count = self.attempts(index) + 1
        atomic_write(self.attempts_path(index), str(count))
        return count

    def quarantine_path(self, index: int) -> Path:
        return self.quarantine_dir / f"{_shard_name(index)}.json"

    def is_quarantined(self, index: int) -> bool:
        return self.quarantine_path(index).exists()

    def quarantine(self, index: int, *, reason: str,
                   failure_records: list[dict]) -> None:
        body = {"shard": index, "reason": reason,
                "attempts": self.attempts(index),
                "failures": failure_records}
        atomic_write(self.quarantine_path(index),
                     json.dumps(body, indent=2, sort_keys=True))
        observability.inc("batch.shards.quarantined")
        logger.error("shard %d quarantined after %d attempt(s): %s",
                     index, body["attempts"], reason)

    def read_quarantine(self, index: int) -> dict | None:
        try:
            return json.loads(self.quarantine_path(index).read_text())
        except (OSError, ValueError):
            return None

    # -- fault-injection counters ------------------------------------------------

    def fault_fires(self, fault_id: str) -> int:
        try:
            return int((self.faults_dir / fault_id).read_text())
        except (OSError, ValueError):
            return 0

    def record_fault_fire(self, fault_id: str) -> int:
        count = self.fault_fires(fault_id) + 1
        self.faults_dir.mkdir(parents=True, exist_ok=True)
        atomic_write(self.faults_dir / fault_id, str(count))
        return count

    # -- results / status --------------------------------------------------------

    def write_results(self, body: dict) -> None:
        atomic_write(self.results_path,
                     json.dumps(body, indent=2, sort_keys=True))

    def read_results(self) -> dict | None:
        try:
            return json.loads(self.results_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def status(self) -> dict:
        """Scan the job directory into a human/machine-readable summary."""
        body = self.open()
        spec = JobSpec.from_dict(body["spec"])
        model_key = body.get("model_key", "")
        total = len(spec.shards())
        committed: list[int] = []
        invalid: list[int] = []
        quarantined: list[int] = []
        pending: list[int] = []
        for index in range(total):
            if self.is_quarantined(index):
                quarantined.append(index)
                continue
            expected = spec.shard_inputs_sha256(index, model_key)
            had_file = self.checkpoint_path(index).exists()
            payload = self.read_checkpoint(index, expected_inputs=expected)
            if payload is not None:
                committed.append(index)
            elif had_file:
                invalid.append(index)
                pending.append(index)
            else:
                pending.append(index)
        return {
            "job_dir": str(self.job_dir),
            "model_dir": body.get("model_dir"),
            "model_key": model_key,
            "on_error": spec.on_error,
            "shards": {
                "total": total,
                "committed": len(committed),
                "pending": pending,
                "invalid": invalid,
                "quarantined": quarantined,
            },
            "items": len(spec.items),
            "complete": (len(committed) + len(quarantined)) == total,
            "has_results": self.results_path.exists(),
        }
