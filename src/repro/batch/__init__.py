"""Resumable corpus-scale batch analysis (``python -m repro batch ...``).

The batch subsystem turns a JSON job spec — corpus manifest, config
snapshot, failure policy — into binary-level shards on an on-disk
queue, runs them through the inference engine, and commits one atomic,
self-checksummed checkpoint per shard.  A job that is SIGKILL'd,
OOM-killed, or power-cut resumes exactly where it died; a durable
content-addressed window cache carries the engine's dedup work across
runs and survives recompiles of overlapping corpora.

Module map: :mod:`repro.batch.spec` (job spec + manifest),
:mod:`repro.batch.job` (on-disk job store: checkpoints, attempt
counters, quarantine), :mod:`repro.batch.cache` (durable window
cache), :mod:`repro.batch.runner` (shard loop, drift checks, fault
hooks).  See ``docs/OPERATIONS.md`` §8 for the operational story.
"""

from repro.batch.cache import WindowCacheStore
from repro.batch.job import BatchJobStore
from repro.batch.runner import job_status, resume_job, run_job
from repro.batch.spec import JobSpec, ManifestItem, demo_corpus, load_manifest

__all__ = [
    "BatchJobStore",
    "JobSpec",
    "ManifestItem",
    "WindowCacheStore",
    "demo_corpus",
    "job_status",
    "load_manifest",
    "resume_job",
    "run_job",
]
