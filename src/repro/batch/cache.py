"""Durable window cache: the engine's dedup LRU made disk-backed.

``dedup.conv1_dedup_ratio`` is already ~7x *within* one run because the
paper's same-type clustering phenomenon makes corpora heavily
redundant; across runs the redundancy is larger still — recompiling a
corpus leaves most functions byte-identical, so most encoded windows
recur.  :class:`WindowCacheStore` persists the engine's computed leaf
rows keyed by window content so a second run over a content-overlapping
corpus answers those windows from disk instead of the CNN cascade.

On-disk layout (one namespace directory per model)::

    <cache-dir>/<model-key>/
    ├── seg-<pid>-<nonce>.bin   append-only record segments
    └── index.json              verified index (rebuilt if stale/corrupt)

Each segment record is self-verifying::

    magic u32 | paylen u32 | crc32 u32 (payload) | key 32 B (SHA-256
    of the window's token-id bytes) | payload (float64 leaf row)

Design contract — the cache is an *accelerator*, never an authority:

* **content-hash keys** — a window's key is the SHA-256 of its encoded
  token-id bytes, so hits are exact; a hit returns the bit-identical
  float64 row the engine once computed (resumed batch jobs therefore
  reproduce uninterrupted runs exactly);
* **model-key namespace** — the store binds to one model's
  :meth:`~repro.core.artifacts.ModelBundle.content_key`; a retrained or
  hot-reloaded bundle reads/writes a different namespace, so stale rows
  can never serve a new model;
* **append-only + crash-tolerant** — writers only ever append to their
  own uniquely named segment; a crash leaves at most a torn tail, which
  the opening scan truncates at the first malformed record;
* **corruption-tolerant, never trusted** — every read re-verifies the
  record's CRC; a flipped byte (or a record whose index entry outlived
  the bytes) is counted, logged, dropped and transparently recomputed
  by the engine — never returned, never fatal;
* **verified index** — ``index.json`` carries its own SHA-256 and the
  byte extent of every segment it covers; if it is missing, damaged, or
  behind the segments on disk, the affected segments are (re)scanned
  record by record.

Observability: ``batch.cache.hits`` / ``batch.cache.misses`` /
``batch.cache.corrupt_records`` / ``batch.cache.appends`` counters plus
the same numbers on :attr:`WindowCacheStore.stats` per instance.
"""

from __future__ import annotations

import json
import logging
import os
import struct
import threading
import zlib
from hashlib import sha256
from pathlib import Path

import numpy as np

from repro.core import observability
from repro.core.fsutil import atomic_write, fsync_dir

logger = logging.getLogger(__name__)

#: Record framing: magic, payload length, payload CRC-32.
_HEADER = struct.Struct("<III")
_MAGIC = 0x43A71CA5
_KEY_LEN = 32

INDEX_NAME = "index.json"
INDEX_FORMAT = "cati-window-cache-index/1"
SEGMENT_GLOB = "seg-*.bin"


def window_key(raw: bytes) -> bytes:
    """The 32-byte content key of one encoded window's id bytes."""
    return sha256(raw).digest()


class WindowCacheStore:
    """Crash- and corruption-tolerant on-disk map: window key → leaf row.

    ``model_key`` namespaces the store (see module docstring);
    ``row_len`` is the leaf-row width (19 for the full taxonomy) used to
    reject mis-sized payloads; ``fsync`` governs whether appends are
    made power-cut durable on :meth:`flush` (tests turn it off for
    speed, jobs leave it on).
    """

    def __init__(self, directory: str | Path, model_key: str, *,
                 row_len: int, fsync: bool = True) -> None:
        if not model_key or any(c in model_key for c in "/\\"):
            raise ValueError(f"model_key must be a plain token, got {model_key!r}")
        self.directory = Path(directory) / model_key
        self.model_key = model_key
        self.row_len = int(row_len)
        self._payload_len = self.row_len * 8  # float64 rows
        self._fsync = fsync
        self._lock = threading.Lock()
        #: key → (segment name, payload offset)
        self._entries: dict[bytes, tuple[str, int]] = {}
        #: segment name → bytes covered by the in-memory entries
        self._extents: dict[str, int] = {}
        self._readers: dict[str, object] = {}
        self._active: object | None = None
        self._active_name: str | None = None
        self._dirty = False
        self.stats = {"hits": 0, "misses": 0, "appends": 0,
                      "corrupt_records": 0, "segments_scanned": 0,
                      "index_rebuilds": 0}
        self.directory.mkdir(parents=True, exist_ok=True)
        self._load()

    # -- opening / index ---------------------------------------------------------

    def _load(self) -> None:
        """Load the verified index, then scan whatever it does not cover."""
        covered = self._load_index()
        for path in sorted(self.directory.glob(SEGMENT_GLOB)):
            name = path.name
            start = covered.get(name, 0)
            size = path.stat().st_size
            if size > start:
                self._scan_segment(path, start)
            self._extents.setdefault(name, min(start, size))
            if covered.get(name, 0) > size:
                # The index claims more bytes than exist: a replaced or
                # truncated segment.  Re-scan from zero, dropping every
                # entry that pointed into it.
                self._drop_segment_entries(name)
                self._scan_segment(path, 0)

    def _load_index(self) -> dict[str, int]:
        """Covered byte extent per segment, {} when the index is unusable."""
        path = self.directory / INDEX_NAME
        try:
            body = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(body, dict) or body.get("format") != INDEX_FORMAT:
            return {}
        claimed = body.pop("sha256", None)
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        if claimed != sha256(canonical.encode("utf-8")).hexdigest():
            logger.warning("window cache index %s failed verification; "
                           "rebuilding from segments", path)
            self.stats["index_rebuilds"] += 1
            observability.inc("batch.cache.index_rebuilds")
            return {}
        segments = body.get("segments")
        entries = body.get("entries")
        if not isinstance(segments, dict) or not isinstance(entries, list):
            return {}
        covered: dict[str, int] = {}
        names = sorted(segments)
        for name in names:
            size = segments[name]
            if not isinstance(size, int) or size < 0:
                return {}
            covered[name] = size
        try:
            for key_hex, seg_index, offset in entries:
                name = names[seg_index]
                if (path_ := self.directory / name).exists() \
                        and offset + self._payload_len <= max(
                            covered[name], path_.stat().st_size):
                    self._entries[bytes.fromhex(key_hex)] = (name, int(offset))
        except (TypeError, ValueError, IndexError, KeyError):
            self._entries.clear()
            return {}
        self._extents.update({name: size for name, size in covered.items()
                              if (self.directory / name).exists()})
        return covered

    def _write_index(self) -> None:
        names = sorted(self._extents)
        index_of = {name: i for i, name in enumerate(names)}
        body = {
            "format": INDEX_FORMAT,
            "model_key": self.model_key,
            "row_len": self.row_len,
            "segments": {name: self._extents[name] for name in names},
            "entries": [[key.hex(), index_of[name], offset]
                        for key, (name, offset) in self._entries.items()],
        }
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        body["sha256"] = sha256(canonical.encode("utf-8")).hexdigest()
        atomic_write(self.directory / INDEX_NAME,
                     json.dumps(body, sort_keys=True),
                     fsync=self._fsync)

    def _scan_segment(self, path: Path, start: int) -> None:
        """Adopt every valid record from byte ``start``; truncate at the
        first malformed one (torn tail or corruption — never trusted)."""
        self.stats["segments_scanned"] += 1
        record_len = _HEADER.size + _KEY_LEN + self._payload_len
        adopted = start
        try:
            with open(path, "rb") as handle:
                handle.seek(start)
                while True:
                    record = handle.read(record_len)
                    if len(record) < record_len:
                        if record:
                            logger.warning(
                                "window cache segment %s: torn tail at byte "
                                "%d dropped", path.name, adopted)
                        break
                    magic, paylen, crc = _HEADER.unpack_from(record)
                    payload = record[_HEADER.size + _KEY_LEN:]
                    if (magic != _MAGIC or paylen != self._payload_len
                            or zlib.crc32(payload) != crc):
                        self.stats["corrupt_records"] += 1
                        observability.inc("batch.cache.corrupt_records")
                        logger.warning(
                            "window cache segment %s: bad record at byte %d; "
                            "dropping the segment remainder (will be "
                            "recomputed)", path.name, adopted)
                        break
                    key = record[_HEADER.size:_HEADER.size + _KEY_LEN]
                    self._entries[key] = (
                        path.name, adopted + _HEADER.size + _KEY_LEN)
                    adopted += record_len
        except OSError as error:
            logger.warning("window cache segment %s unreadable: %s",
                           path.name, error)
        self._extents[path.name] = adopted

    def _drop_segment_entries(self, name: str) -> None:
        for key in [k for k, (seg, _) in self._entries.items() if seg == name]:
            del self._entries[key]

    # -- reads -------------------------------------------------------------------

    def _reader(self, name: str):
        if name == self._active_name and self._active is not None:
            # Our own appends may still sit in the write buffer; push
            # them to the OS (no fsync needed — same-process read).
            self._active.flush()
        handle = self._readers.get(name)
        if handle is None:
            handle = self._readers[name] = open(self.directory / name, "rb")
        return handle

    def get_many(self, raw_keys: list[bytes]) -> dict[bytes, np.ndarray]:
        """Raw window-id bytes → float64 leaf rows for every durable hit.

        Every returned row was CRC-verified on this read; corrupt or
        vanished records are dropped from the map (and counted) so the
        caller recomputes them — the cache never serves damaged bytes.
        """
        out: dict[bytes, np.ndarray] = {}
        hits = misses = corrupt = 0
        with self._lock:
            for raw in raw_keys:
                key = window_key(raw)
                entry = self._entries.get(key)
                if entry is None:
                    misses += 1
                    continue
                name, offset = entry
                try:
                    handle = self._reader(name)
                    handle.seek(offset - _HEADER.size - _KEY_LEN)
                    header = handle.read(_HEADER.size)
                    stored_key = handle.read(_KEY_LEN)
                    payload = handle.read(self._payload_len)
                    magic, paylen, crc = _HEADER.unpack(header)
                    valid = (magic == _MAGIC and paylen == self._payload_len
                             and stored_key == key
                             and len(payload) == self._payload_len
                             and zlib.crc32(payload) == crc)
                except (OSError, struct.error):
                    valid = False
                if not valid:
                    corrupt += 1
                    misses += 1
                    del self._entries[key]
                    self._dirty = True
                    logger.warning(
                        "window cache %s: record for %s failed verification; "
                        "recomputing", name, key.hex()[:12])
                    continue
                out[raw] = np.frombuffer(payload, dtype=np.float64).copy()
                hits += 1
        self.stats["hits"] += hits
        self.stats["misses"] += misses
        self.stats["corrupt_records"] += corrupt
        if observability.is_enabled():
            registry = observability.get_registry()
            registry.inc("batch.cache.hits", hits)
            registry.inc("batch.cache.misses", misses)
            if corrupt:
                registry.inc("batch.cache.corrupt_records", corrupt)
        return out

    # -- writes ------------------------------------------------------------------

    def _active_segment(self):
        if self._active is None:
            name = f"seg-{os.getpid()}-{os.urandom(4).hex()}.bin"
            self._active_name = name
            self._active = open(self.directory / name, "ab")
            self._extents.setdefault(name, 0)
        return self._active

    def put_many(self, pairs: list[tuple[bytes, np.ndarray]]) -> None:
        """Append (raw window-id bytes, float64 leaf row) records."""
        if not pairs:
            return
        appended = 0
        with self._lock:
            handle = self._active_segment()
            name = self._active_name
            assert name is not None
            offset = self._extents[name]
            for raw, row in pairs:
                key = window_key(raw)
                if key in self._entries:
                    continue
                payload = np.ascontiguousarray(
                    row, dtype=np.float64).tobytes()
                if len(payload) != self._payload_len:
                    raise ValueError(
                        f"leaf row has {len(payload)} payload bytes, "
                        f"store expects {self._payload_len}")
                handle.write(_HEADER.pack(_MAGIC, self._payload_len,
                                          zlib.crc32(payload)))
                handle.write(key)
                handle.write(payload)
                self._entries[key] = (name, offset + _HEADER.size + _KEY_LEN)
                offset += _HEADER.size + _KEY_LEN + self._payload_len
                appended += 1
            self._extents[name] = offset
            self._dirty = self._dirty or appended > 0
        self.stats["appends"] += appended
        if appended and observability.is_enabled():
            observability.inc("batch.cache.appends", appended)

    def flush(self) -> None:
        """Make appended records durable and rewrite the verified index."""
        with self._lock:
            if self._active is not None:
                self._active.flush()
                if self._fsync:
                    os.fsync(self._active.fileno())
                    fsync_dir(self.directory)
            if self._dirty:
                self._write_index()
                self._dirty = False

    def close(self) -> None:
        self.flush()
        with self._lock:
            for handle in self._readers.values():
                handle.close()
            self._readers.clear()
            if self._active is not None:
                self._active.close()
                self._active = None

    def __enter__(self) -> "WindowCacheStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
