"""Batch job specs: what to analyze, how to shard it, how to fail.

A *job spec* is the durable, declarative half of a batch run: the corpus
manifest, the sharding, and the failure policy.  Everything else (the
resolved config snapshot, the model identity, checkpoint state) is
recorded by :class:`~repro.batch.job.BatchJobStore` when the job is
created, so a resume can re-derive the exact same work from disk alone.

Corpus manifests are JSON — either ``{"items": [...]}`` or a bare list —
with two item kinds:

``{"kind": "demo", "seed": 7, "compiler": "gcc", "opt_level": 1}``
    Compile one deterministic demo program (the serve daemon's demo
    path): requires a compiler on PATH, used by tests/smokes/benches.

``{"kind": "file", "path": "job-001.json"}``
    A pre-disassembled binary in the serve wire format (``binary`` +
    ``extents`` keys, see :mod:`repro.serve.protocol`); relative paths
    resolve against the manifest's own directory.

Canonical hashing: :func:`canonical_json` + :func:`sha256_hex` define
the one serialization used for every integrity digest in the batch
subsystem (shard input hashes, checkpoint self-checksums, config
snapshots), so "same bytes" always means "same digest".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path

from repro.core.errors import BatchError

#: Valid per-shard failure policies (mirrors handle_failure's contract).
ON_ERROR_POLICIES = ("raise", "skip")


def canonical_json(obj) -> str:
    """The one canonical JSON form digests are computed over."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def sha256_hex(data: str | bytes) -> str:
    if isinstance(data, str):
        data = data.encode("utf-8")
    return sha256(data).hexdigest()


@dataclass(frozen=True)
class ManifestItem:
    """One corpus entry: a binary-to-analyze and how to obtain it."""

    kind: str                 # "demo" | "file"
    name: str                 # display / failure-report label
    seed: int = 0             # demo: codegen seed
    compiler: str = "gcc"     # demo: toolchain
    opt_level: int = 1        # demo: -O level
    path: str = ""            # file: wire-format JSON (manifest-relative)

    def to_dict(self) -> dict:
        if self.kind == "demo":
            return {"kind": "demo", "name": self.name, "seed": self.seed,
                    "compiler": self.compiler, "opt_level": self.opt_level}
        return {"kind": "file", "name": self.name, "path": self.path}

    @classmethod
    def from_dict(cls, data: object, *, base_dir: Path | None = None) -> "ManifestItem":
        if not isinstance(data, dict):
            raise BatchError(f"manifest item must be an object, got {data!r}",
                             stage="batch")
        kind = data.get("kind")
        try:
            if kind == "demo":
                seed = int(data.get("seed", 0))
                return cls(kind="demo",
                           name=str(data.get("name") or f"demo-{seed}"),
                           seed=seed,
                           compiler=str(data.get("compiler", "gcc")),
                           opt_level=int(data.get("opt_level", 1)))
            if kind == "file":
                raw = data.get("path")
                if not raw:
                    raise BatchError("manifest 'file' item needs a 'path'",
                                     stage="batch")
                path = Path(str(raw))
                if base_dir is not None and not path.is_absolute():
                    path = base_dir / path
                return cls(kind="file",
                           name=str(data.get("name") or path.stem),
                           path=str(path))
        except (TypeError, ValueError) as error:
            raise BatchError(f"bad manifest item {data!r}: {error}",
                             stage="batch") from error
        raise BatchError(
            f"manifest item kind must be 'demo' or 'file', got {kind!r}",
            stage="batch")

    def load(self):
        """Materialize ``(stripped Binary, extents_by_function)``.

        Wrapped by the runner's per-shard error handling; raises the
        pipeline's own typed errors (ToolchainError for a missing
        compiler, BatchError for a bad wire file).
        """
        if self.kind == "demo":
            from repro.codegen.compilers import compiler_by_name
            from repro.codegen.strip import strip
            from repro.experiments.speed import extents_from_debug

            compiler = compiler_by_name(self.compiler)
            binary = compiler.compile_fresh(
                seed=self.seed, name=self.name, opt_level=self.opt_level)
            return strip(binary), extents_from_debug(binary)
        from repro.serve.protocol import binary_from_wire, extents_from_wire

        try:
            body = json.loads(Path(self.path).read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            raise BatchError(
                f"manifest item {self.name!r}: cannot read wire file "
                f"{self.path}: {error}", stage="batch") from error
        if not isinstance(body, dict) or "binary" not in body:
            raise BatchError(
                f"manifest item {self.name!r}: {self.path} is not a wire-"
                "format job (expected an object with a 'binary' key)",
                stage="batch")
        stripped = binary_from_wire(body["binary"])
        extents = extents_from_wire(body.get("extents") or [])
        if len(extents) != len(stripped.functions):
            raise BatchError(
                f"manifest item {self.name!r}: {len(extents)} extents "
                f"entries for {len(stripped.functions)} functions",
                stage="batch")
        return stripped, extents


@dataclass(frozen=True)
class JobSpec:
    """The declarative half of a batch job (persisted into ``job.json``)."""

    items: tuple[ManifestItem, ...] = field(default=())
    shard_size: int = 4
    on_error: str = "skip"
    max_retries: int = 1      # re-tries per shard before quarantine
    backoff: float = 0.05     # shard retry backoff base (seconds)
    jitter: float = 0.5       # shard retry jitter fraction
    seed: int = 0             # seeds the retry jitter RNG (determinism)
    structs: bool = False     # run the posterior struct-recovery stage

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_POLICIES:
            raise BatchError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {self.on_error!r}", stage="batch")
        if self.shard_size < 1:
            raise BatchError("shard_size must be >= 1", stage="batch")
        if self.max_retries < 0:
            raise BatchError("max_retries must be >= 0", stage="batch")
        if not self.items:
            raise BatchError("job has no manifest items", stage="batch")

    def to_dict(self) -> dict:
        return {
            "items": [item.to_dict() for item in self.items],
            "shard_size": self.shard_size,
            "on_error": self.on_error,
            "max_retries": self.max_retries,
            "backoff": self.backoff,
            "jitter": self.jitter,
            "seed": self.seed,
            "structs": self.structs,
        }

    @classmethod
    def from_dict(cls, data: object) -> "JobSpec":
        if not isinstance(data, dict):
            raise BatchError(f"job spec must be an object, got {data!r}",
                             stage="batch")
        try:
            return cls(
                items=tuple(ManifestItem.from_dict(item)
                            for item in data.get("items", [])),
                shard_size=int(data.get("shard_size", 4)),
                on_error=str(data.get("on_error", "skip")),
                max_retries=int(data.get("max_retries", 1)),
                backoff=float(data.get("backoff", 0.05)),
                jitter=float(data.get("jitter", 0.5)),
                seed=int(data.get("seed", 0)),
                structs=bool(data.get("structs", False)),
            )
        except (TypeError, ValueError) as error:
            raise BatchError(f"bad job spec: {error}",
                             stage="batch") from error

    def shards(self) -> list[tuple[ManifestItem, ...]]:
        """The job's work units, in deterministic manifest order."""
        return [self.items[i:i + self.shard_size]
                for i in range(0, len(self.items), self.shard_size)]

    def shard_inputs_sha256(self, shard_index: int, model_key: str) -> str:
        """Integrity digest binding a shard's inputs to a model.

        Covers the shard's item dicts *and* the model bundle's content
        key, so either a manifest edit or a retrained model invalidates
        the shard's checkpoint automatically.
        """
        shard = self.shards()[shard_index]
        body = {"items": [item.to_dict() for item in shard],
                "model_key": model_key}
        return sha256_hex(canonical_json(body))


def load_manifest(path: str | Path) -> tuple[ManifestItem, ...]:
    """Parse a corpus manifest file into validated items."""
    path = Path(path)
    try:
        body = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise BatchError(f"cannot read manifest {path}: {error}",
                         stage="batch") from error
    items = body.get("items") if isinstance(body, dict) else body
    if not isinstance(items, list):
        raise BatchError(
            f"manifest {path} must be a list or an object with 'items'",
            stage="batch")
    return tuple(ManifestItem.from_dict(item, base_dir=path.parent)
                 for item in items)


def demo_corpus(count: int, *, compiler: str = "gcc", opt_level: int = 1,
                base_seed: int = 100) -> tuple[ManifestItem, ...]:
    """``count`` deterministic demo items (tests, smokes, benchmarks)."""
    if count < 1:
        raise BatchError("demo corpus needs count >= 1", stage="batch")
    return tuple(
        ManifestItem(kind="demo", name=f"demo-{base_seed + i}",
                     seed=base_seed + i, compiler=compiler,
                     opt_level=opt_level)
        for i in range(count))
