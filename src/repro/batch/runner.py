"""Batch-job execution: shard loop, retries, drift checks, fault hooks.

:func:`run_job` compiles a :class:`~repro.batch.spec.JobSpec` into
binary-level shards on the :class:`~repro.batch.job.BatchJobStore`
queue and drives them through the existing
:meth:`~repro.core.engine.InferenceEngine.infer_binary_many` path,
committing one atomic checkpoint per shard.  :func:`resume_job` replays
a job directory after *any* interruption — SIGKILL, OOM, power cut —
recomputing only shards without a valid committed checkpoint, so the
final merged result is bit-identical to an uninterrupted run (asserted
by ``tests/test_batch.py``).

Drift protection: a resume re-opens the model bundle and compares its
content key (per-file SHA-256 digest) and structural config against
what ``job.json`` recorded at creation.  Any mismatch raises
:class:`~repro.core.errors.ConfigMismatchError` unless ``force=True``,
in which case ``job.json`` is rewritten to the new identity and every
existing checkpoint automatically goes stale (their ``inputs_sha256``
binds the old model key) and is recomputed.

Fault injection (tests/smokes only): the ``REPRO_BATCH_FAULT`` env var
installs one scripted fault::

    REPRO_BATCH_FAULT="kill:shard=1:point=pre-commit"
    REPRO_BATCH_FAULT="torn:shard=2:point=torn-commit:times=2"
    REPRO_BATCH_FAULT="raise:shard=0:point=pre-commit"

``kill`` SIGKILLs the process at the point; ``torn`` first writes a
deliberately truncated checkpoint *directly to the final path*
(bypassing the atomic commit) then SIGKILLs, simulating a torn write
on a non-atomic filesystem; ``raise`` throws a transient error into
the shard retry loop.  Fire counts persist in the job directory so a
fault fires exactly ``times`` times across resumes.
"""

from __future__ import annotations

import json
import logging
import os
import random
import signal
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

from repro.batch.cache import WindowCacheStore
from repro.batch.job import BatchJobStore
from repro.batch.spec import JobSpec, ManifestItem
from repro.core import observability
from repro.core.artifacts import ModelBundle
from repro.core.config import CatiConfig
from repro.core.errors import (
    BatchError,
    ConfigMismatchError,
    FailureReport,
    handle_failure,
)
from repro.core.fsutil import atomic_write
from repro.core.pipeline import Cati
from repro.core.toolchain import retry_delays
from repro.core.types import ALL_TYPES

logger = logging.getLogger(__name__)

FAULT_ENV = "REPRO_BATCH_FAULT"
FAULT_POINTS = ("pre-commit", "torn-commit", "post-commit")
FAULT_MODES = ("kill", "raise", "torn")
RESULTS_FORMAT = "cati-batch-results/1"


# -- fault injection ---------------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """One scripted fault parsed from ``REPRO_BATCH_FAULT``."""

    mode: str    # kill | raise | torn
    shard: int
    point: str   # pre-commit | torn-commit | post-commit
    times: int = 1

    @property
    def fault_id(self) -> str:
        return f"{self.mode}-shard{self.shard}-{self.point}"

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        raw = os.environ.get(FAULT_ENV, "").strip()
        if not raw:
            return None
        mode, _, rest = raw.partition(":")
        fields = {"times": "1"}
        for piece in rest.split(":"):
            key, _, value = piece.partition("=")
            fields[key] = value
        try:
            plan = cls(mode=mode, shard=int(fields["shard"]),
                       point=fields["point"], times=int(fields["times"]))
        except (KeyError, ValueError) as error:
            raise BatchError(f"bad {FAULT_ENV}={raw!r}: {error}",
                             stage="batch") from error
        if plan.mode not in FAULT_MODES or plan.point not in FAULT_POINTS:
            raise BatchError(
                f"bad {FAULT_ENV}={raw!r}: mode must be one of "
                f"{FAULT_MODES}, point one of {FAULT_POINTS}", stage="batch")
        return plan

    def fire(self, store: BatchJobStore, shard: int, point: str) -> None:
        """Act if this plan targets (shard, point) and has fires left."""
        if shard != self.shard or point != self.point:
            return
        if store.fault_fires(self.fault_id) >= self.times:
            return
        store.record_fault_fire(self.fault_id)
        logger.warning("fault injection: %s at shard %d %s",
                       self.mode, shard, point)
        if self.mode == "raise":
            raise BatchError(
                f"injected fault at shard {shard} {point}",
                shard=shard, stage="batch")
        if self.mode == "torn":
            # Simulate a torn write: dump half an (unchecksummable)
            # checkpoint straight to the final path, no temp, no rename.
            path = store.checkpoint_path(shard)
            body = '{"format": "cati-batch-checkpoint/1", "payload": {"tr'
            path.write_text(body, encoding="utf-8")
        os.kill(os.getpid(), signal.SIGKILL)


# -- model / drift -----------------------------------------------------------------


def _open_model(model_dir: str, config: CatiConfig | None) -> tuple[Cati, str]:
    bundle = ModelBundle.open(model_dir)
    cati = Cati.load(model_dir, config=config)
    return cati, bundle.content_key()


def _check_drift(body: dict, model_dir: str, *, force: bool,
                 store: BatchJobStore) -> tuple[Cati, dict]:
    """Reject model/config drift on resume; ``force`` re-binds the job."""
    saved_config = CatiConfig.from_dict(body["config"])
    bundle = ModelBundle.open(model_dir)
    current_key = bundle.content_key()
    drifted = current_key != body.get("model_key")
    if drifted and not force:
        raise ConfigMismatchError(
            f"model at {model_dir} (content key {current_key[:12]}...) is "
            f"not the model this job was created against "
            f"(key {str(body.get('model_key'))[:12]}...); pass --force to "
            "re-bind the job (checkpoints will be recomputed)",
            path=str(model_dir), stage="batch")
    try:
        cati = Cati.load(model_dir, config=saved_config)
    except ConfigMismatchError:
        if not force:
            raise
        # Forced: the bundle's own config snapshot wins.
        cati = Cati.load(model_dir, config=None)
    if drifted or str(model_dir) != body.get("model_dir"):
        body = dict(body)
        body["model_key"] = current_key
        body["model_dir"] = str(model_dir)
        body["config"] = cati.config.to_dict()
        atomic_write(store.job_path,
                     json.dumps(body, indent=2, sort_keys=True))
        logger.warning("job re-bound to model %s (key %s...); stale "
                       "checkpoints will be recomputed",
                       model_dir, current_key[:12])
    return cati, body


# -- shard execution ---------------------------------------------------------------


def _serialize_predictions(results) -> list[list[dict]]:
    out = []
    for result in results:
        out.append([
            {"variable_id": p.variable_id, "predicted": str(p.predicted),
             "n_vucs": p.n_vucs, "scores": [float(s) for s in p.scores]}
            for p in result
        ])
    return out


def _serialize_layouts(results) -> list[list[dict] | None]:
    """Per-result layout blocks (None = posterior stage did not run)."""
    from repro.serve.protocol import layout_to_dict

    out: list[list[dict] | None] = []
    for result in results:
        layouts = getattr(result, "layouts", None)
        out.append(None if layouts is None
                   else [layout_to_dict(layout) for layout in layouts])
    return out


def _run_shard(
    cati: Cati, shard: tuple[ManifestItem, ...], on_error: str,
    structs: bool = False,
) -> tuple[list[list[dict]], list[list[dict] | None], FailureReport]:
    """Load + infer every item of one shard through the engine pool path."""
    report = FailureReport()
    jobs = []
    loaded: list[bool] = []
    for item in shard:
        try:
            stripped, extents = item.load()
        except Exception as exc:
            handle_failure(exc, on_error=on_error, failures=report,
                           stage="batch", binary=item.name)
            loaded.append(False)
            continue
        jobs.append((stripped, extents))
        loaded.append(True)
    # The durable window cache lives in this process; worker forks would
    # append to an inherited segment handle, so the pool is bypassed
    # whenever a store is attached (serial still hits the cross-binary
    # caches, which is where batch throughput comes from).
    n_workers = 1 if cati.engine.window_store is not None else None
    results = cati.engine.infer_binary_many(
        jobs, n_workers=n_workers, on_error=on_error, failures=report,
        structs=True if structs else None)
    serialized = _serialize_predictions(results)
    layouts = _serialize_layouts(results)
    merged: list[list[dict]] = []
    merged_layouts: list[list[dict] | None] = []
    cursor = 0
    for ok in loaded:
        if ok:
            merged.append(serialized[cursor])
            merged_layouts.append(layouts[cursor])
            cursor += 1
        else:
            merged.append([])
            merged_layouts.append(None)
    return merged, merged_layouts, report


def _execute(store: BatchJobStore, body: dict, cati: Cati, *,
             sleep: Callable[[float], None] = time.sleep) -> dict:
    """The shard loop shared by run and resume."""
    spec = JobSpec.from_dict(body["spec"])
    model_key = str(body["model_key"])
    fault = FaultPlan.from_env()
    cache: WindowCacheStore | None = None
    cache_dir = body.get("cache_dir")
    if cache_dir:
        cache = WindowCacheStore(cache_dir, model_key,
                                 row_len=len(ALL_TYPES))
        cati.engine.attach_window_store(cache)
    began = time.perf_counter()
    shards = spec.shards()
    ran = reused = 0
    try:
        for index, shard in enumerate(shards):
            if store.is_quarantined(index):
                logger.warning("shard %d is quarantined; skipping", index)
                continue
            expected = spec.shard_inputs_sha256(index, model_key)
            if store.read_checkpoint(index, expected_inputs=expected) is not None:
                reused += 1
                observability.inc("batch.shards.reused")
                continue
            _attempt_shard(store, spec, cati, index, shard, expected,
                           fault=fault, sleep=sleep)
            ran += 1
    finally:
        if cache is not None:
            cache.close()
            cati.engine.attach_window_store(None)
    elapsed = time.perf_counter() - began
    results = _merge(store, spec, model_key)
    results["elapsed_s"] = round(elapsed, 6)
    results["shards_run"] = ran
    results["shards_reused"] = reused
    if cache is not None:
        results["window_cache"] = dict(cache.stats)
    store.write_results(results)
    observability.inc("batch.jobs.completed")
    return results


def _attempt_shard(store: BatchJobStore, spec: JobSpec, cati: Cati,
                   index: int, shard: tuple[ManifestItem, ...],
                   expected: str, *, fault: FaultPlan | None,
                   sleep: Callable[[float], None]) -> None:
    """Run one shard to a committed checkpoint or into quarantine."""
    budget = spec.max_retries + 1
    # Seed per (job, shard): str seeding is stable across processes, so
    # the backoff schedule a resumed job sleeps is the schedule the
    # original job would have slept — fault-injection tests assert it.
    rng = random.Random(f"{spec.seed}:{index}")
    delays = list(retry_delays(spec.backoff, spec.max_retries,
                               jitter=spec.jitter, rng=rng))
    interrupted = store.attempts(index)
    history = FailureReport()
    if interrupted > 0:
        # Earlier attempts consumed budget but committed nothing: the
        # process died mid-shard (crash, OOM, SIGKILL).  Enumerate them
        # so the merged report accounts for every interruption.
        history.record(
            BatchError(
                f"{interrupted} earlier attempt(s) died without "
                "committing a checkpoint (killed or crashed mid-shard)",
                shard=index, stage="batch"),
            stage="batch")
        observability.inc("batch.shards.interrupted_attempts", interrupted)
    while True:
        used = store.attempts(index)
        if used >= budget:
            store.quarantine(
                index,
                reason=f"attempt budget exhausted ({used}/{budget})",
                failure_records=history.records_to_dicts())
            if spec.on_error == "raise":
                raise BatchError(
                    f"shard {index} exhausted its {budget} attempt(s) "
                    "and was quarantined",
                    job_dir=str(store.job_dir), shard=index, stage="batch")
            return
        attempt = store.bump_attempts(index)
        observability.inc("batch.shards.attempts")
        try:
            if fault is not None:
                fault.fire(store, index, "pre-commit")
            predictions, layouts, report = _run_shard(
                cati, shard, spec.on_error, structs=spec.structs)
            if cati.engine.window_store is not None:
                cati.engine.window_store.flush()
            payload = {
                "shard": index,
                "inputs_sha256": expected,
                "items": [item.name for item in shard],
                "predictions": predictions,
                "failures": (history.records_to_dicts()
                             + report.records_to_dicts()),
                "attempts": attempt,
            }
            if any(entry is not None for entry in layouts):
                payload["layouts"] = layouts
            if fault is not None:
                fault.fire(store, index, "torn-commit")
            store.write_checkpoint(index, payload)
            if fault is not None:
                fault.fire(store, index, "post-commit")
            observability.inc("batch.shards.committed")
            return
        except Exception as exc:
            history.record(exc, stage="batch")
            remaining = budget - store.attempts(index)
            logger.warning("shard %d attempt %d failed (%s); %d attempt(s) "
                           "left", index, attempt, exc, remaining)
            observability.inc("batch.shards.retries")
            if remaining > 0 and delays:
                sleep(delays[min(attempt - 1, len(delays) - 1)])


def _merge(store: BatchJobStore, spec: JobSpec, model_key: str) -> dict:
    """Fold every committed checkpoint into one results document."""
    shards = spec.shards()
    predictions: dict[str, list[dict]] = {}
    layouts: dict[str, list[dict]] = {}
    failure_dicts: list[dict] = []
    quarantined: list[int] = []
    missing: list[int] = []
    for index, shard in enumerate(shards):
        if store.is_quarantined(index):
            quarantined.append(index)
            info = store.read_quarantine(index) or {}
            failure_dicts.extend(info.get("failures", []))
            continue
        expected = spec.shard_inputs_sha256(index, model_key)
        payload = store.read_checkpoint(index, expected_inputs=expected)
        if payload is None:
            missing.append(index)
            continue
        failure_dicts.extend(payload.get("failures", []))
        for item, preds in zip(shard, payload.get("predictions", [])):
            predictions[item.name] = preds
        # Pre-structs checkpoints have no "layouts" key; absent = stage off.
        for item, entry in zip(shard, payload.get("layouts") or []):
            if entry is not None:
                layouts[item.name] = entry
    report = FailureReport.from_records(failure_dicts)
    n_predictions = sum(len(preds) for preds in predictions.values())
    observability.inc("batch.predictions", n_predictions)
    out_layouts = {"layouts": layouts} if layouts else {}
    return {
        "format": RESULTS_FORMAT,
        "model_key": model_key,
        "items": len(spec.items),
        "predictions": predictions,
        **out_layouts,
        "n_predictions": n_predictions,
        "failures": {
            "total": len(report),
            "by_stage": report.by_stage(),
            "by_kind": report.by_kind(),
            "records": failure_dicts,
        },
        "shards": {
            "total": len(shards),
            "quarantined": quarantined,
            "missing": missing,
        },
    }


# -- public API --------------------------------------------------------------------


def run_job(job_dir: str | Path, spec: JobSpec, *, model_dir: str,
            config: CatiConfig | None = None,
            cache_dir: str | Path | None = None,
            sleep: Callable[[float], None] = time.sleep) -> dict:
    """Create a fresh batch job and drive it to completion.

    Refuses a ``job_dir`` that already holds a job (use
    :func:`resume_job`).  ``cache_dir=None`` disables the durable window
    cache.  Returns the merged results document (also committed to
    ``<job_dir>/results.json``).
    """
    store = BatchJobStore(job_dir)
    cati, model_key = _open_model(str(model_dir), config)
    body = store.create(
        spec, config=cati.config.to_dict(), model_dir=str(model_dir),
        model_key=model_key,
        cache_dir=str(cache_dir) if cache_dir else None)
    logger.info("batch job created at %s: %d item(s) in %d shard(s)",
                job_dir, len(spec.items), len(spec.shards()))
    observability.inc("batch.jobs.created")
    return _execute(store, body, cati, sleep=sleep)


def resume_job(job_dir: str | Path, *, model_dir: str | None = None,
               force: bool = False,
               sleep: Callable[[float], None] = time.sleep) -> dict:
    """Resume an interrupted job exactly where it died.

    Shards with a valid committed checkpoint are reused verbatim;
    partially-written checkpoints are detected (envelope checksum),
    discarded and recomputed.  Model or structural-config drift since
    job creation raises :class:`ConfigMismatchError` unless ``force``.
    """
    store = BatchJobStore(job_dir)
    body = store.open()
    target = str(model_dir) if model_dir else str(body["model_dir"])
    cati, body = _check_drift(body, target, force=force, store=store)
    observability.inc("batch.jobs.resumed")
    return _execute(store, body, cati, sleep=sleep)


def job_status(job_dir: str | Path) -> dict:
    """A scan-based summary of a job directory (no model load)."""
    return BatchJobStore(job_dir).status()
