"""``python -m repro repl`` — an interactive shell over analysis sessions.

A thin stdlib client for the daemon's session API: one
:class:`~repro.serve.client.ServeClient`, one open
:class:`~repro.serve.client.SessionHandle` at a time, and a small
command language mapping 1:1 onto the ``cati-tool-call/1`` tools.
Line editing and tab completion come from :mod:`readline` when the
platform has it; the REPL degrades to plain ``input()`` otherwise.

Two modes share every code path:

- **interactive** — a ``cati>`` prompt; errors print and the loop
  continues.
- **scripted** — ``--exec "open demo 7; functions; annotate 0"`` runs
  a ``;``-separated command list and exits non-zero on the first
  failure.  This is what ``scripts/smoke_repl.py`` drives.

Sessions are server-side state, so they can vanish between commands
(TTL expiry, LRU eviction, a worker crash behind the router).  The
daemon answers 410 for any unresolvable session id; the REPL prints a
``session gone`` notice, re-opens with the last ``open`` arguments, and
retries the command once — making expiry an inconvenience instead of a
lost transcript.
"""

from __future__ import annotations

import json
import shlex
import time

from repro.serve.client import ServeClient, ServeClientError, SessionHandle

try:  # pragma: no cover - platform dependent
    import readline
except ImportError:  # pragma: no cover - Windows / minimal builds
    readline = None

PROMPT = "cati> "

#: command -> (usage, one-line help), in help display order.
COMMANDS = {
    "help": ("help", "show this table"),
    "open": ("open demo [seed [opt]] | open path FILE",
             "open an analysis session on the server"),
    "info": ("info", "summarize the open session"),
    "functions": ("functions", "list functions with variable counts"),
    "vars": ("vars", "list every variable id, one per line"),
    "dis": ("dis [func]", "plain disassembly of one function"),
    "type": ("type VAR|%i", "type one variable (micro-batch path)"),
    "explain": ("explain VAR|%i [vuc]", "occlusion epsilons for one VUC"),
    "annotate": ("annotate [func]", "disassembly annotated with types"),
    "layouts": ("layouts", "struct layouts recovered from the session"),
    "health": ("health", "server /healthz snapshot"),
    "sleep": ("sleep SECONDS", "pause (for scripting TTL tests)"),
    "close": ("close", "close the open session"),
    "quit": ("quit | exit", "leave the repl"),
}


class ReplError(RuntimeError):
    """A user-level command failure (bad args, no session, server error)."""


class Repl:
    """One client + at-most-one session, driven by text commands."""

    def __init__(self, client: ServeClient, *, out=print) -> None:
        self.client = client
        self.out = out
        self.handle: SessionHandle | None = None
        #: The request body of the last successful ``open`` — replayed
        #: to recover when the server answers 410 for the session.
        self._last_open: dict | None = None

    # -- session plumbing --------------------------------------------------------

    def _require_session(self) -> SessionHandle:
        if self.handle is None:
            raise ReplError("no open session — run `open demo` or `open path FILE`")
        return self.handle

    def _resolve_variable(self, token: str) -> str:
        """Accept a variable id verbatim or ``%i`` as an index into vars."""
        handle = self._require_session()
        if token.startswith("%"):
            names = handle.variables
            try:
                index = int(token[1:])
                return names[index]
            except (ValueError, IndexError):
                raise ReplError(
                    f"{token!r} does not index the {len(names)} session variables"
                    ) from None
        return token

    def _call(self, tool: str, **args) -> dict:
        """One tool call with a single 410 → re-open → retry cycle."""
        handle = self._require_session()
        try:
            return handle.call(tool, **args)
        except ServeClientError as error:
            if error.status != 410 or self._last_open is None:
                raise
            self.out(f"session gone (HTTP 410): {error}; re-opening")
            self.handle = self.client.open_session(self._last_open)
            return self.handle.call(tool, **args)

    # -- commands ----------------------------------------------------------------

    def cmd_help(self, args: list[str]) -> None:
        width = max(len(usage) for usage, _ in COMMANDS.values())
        for usage, text in COMMANDS.values():
            self.out(f"  {usage:{width}s}  {text}")

    def cmd_open(self, args: list[str]) -> None:
        if not args:
            raise ReplError("usage: open demo [seed [opt]] | open path FILE")
        request: dict
        if args[0] == "demo":
            demo = {}
            if len(args) > 1:
                demo["seed"] = int(args[1])
            if len(args) > 2:
                demo["opt_level"] = int(args[2])
            request = {"demo": demo}
        elif args[0] == "path":
            if len(args) != 2:
                raise ReplError("usage: open path FILE")
            request = {"path": args[1]}
        else:
            raise ReplError(f"unknown open form {args[0]!r} (demo | path)")
        self.handle = self.client.open_session(request)
        self._last_open = request
        info = self.handle.info
        self.out(f"session {info['id']} open: {info['binary']} "
                 f"({info['n_functions']} functions, "
                 f"{info['n_variables']} variables, "
                 f"{info['n_windows']} windows, ttl {info['ttl_s']:g}s)")

    def cmd_info(self, args: list[str]) -> None:
        info = self._require_session().info
        self.out(json.dumps(info, indent=2, sort_keys=True))

    def cmd_functions(self, args: list[str]) -> None:
        result = self._call("list_functions")
        for func in result["functions"]:
            self.out(f"  [{func['index']}] {func['name']} @ {func['address']:#x}  "
                     f"{func['n_instructions']} instructions, "
                     f"{len(func['variables'])} variables")

    def cmd_vars(self, args: list[str]) -> None:
        for index, name in enumerate(self._require_session().variables):
            self.out(f"  %{index}  {name}")

    def _function_ref(self, args: list[str]):
        if not args:
            return 0
        try:
            return int(args[0])
        except ValueError:
            return args[0]

    def cmd_dis(self, args: list[str]) -> None:
        result = self._call("disassemble", function=self._function_ref(args))
        self.out(f"{result['function']}:")
        for line in result["lines"]:
            self.out(line)

    def cmd_type(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ReplError("usage: type VAR|%i")
        variable_id = self._resolve_variable(args[0])
        result = self._call("type_variable", variable_id=variable_id)
        prediction = result["prediction"]
        self.out(f"  {prediction['variable_id']}: {prediction['type']} "
                 f"(confidence {prediction['confidence']:.4f}, "
                 f"{prediction['n_vucs']} VUCs)")

    def cmd_explain(self, args: list[str]) -> None:
        if not args or len(args) > 2:
            raise ReplError("usage: explain VAR|%i [vuc]")
        variable_id = self._resolve_variable(args[0])
        vuc = int(args[1]) if len(args) > 1 else 0
        result = self._call("explain", variable_id=variable_id, vuc=vuc)
        self.out(f"  {result['variable_id']} vuc {result['vuc']}/{result['n_vucs']}: "
                 f"{result['predicted']} "
                 f"(base confidence {result['base_confidence']:.4f})")
        for line in result["lines"]:
            self.out(line)

    def cmd_annotate(self, args: list[str]) -> None:
        result = self._call("annotate_disassembly",
                            function=self._function_ref(args))
        self.out(f"{result['function']} (stripped) with inferred types:")
        for line in result["lines"]:
            self.out(line)

    def cmd_layouts(self, args: list[str]) -> None:
        result = self._call("struct_layouts")
        self.out(json.dumps(result, indent=2, sort_keys=True))

    def cmd_health(self, args: list[str]) -> None:
        self.out(json.dumps(self.client.health(), indent=2, sort_keys=True))

    def cmd_sleep(self, args: list[str]) -> None:
        if len(args) != 1:
            raise ReplError("usage: sleep SECONDS")
        time.sleep(float(args[0]))

    def cmd_close(self, args: list[str]) -> None:
        handle = self._require_session()
        try:
            handle.close()
        except ServeClientError as error:
            if error.status != 410:
                raise
        self.out(f"session {handle.id} closed")
        self.handle = None

    # -- dispatch ----------------------------------------------------------------

    def run_command(self, line: str) -> bool:
        """Execute one command line; return False when the REPL should exit."""
        try:
            words = shlex.split(line, comments=True)
        except ValueError as error:
            raise ReplError(f"cannot parse command: {error}") from None
        if not words:
            return True
        command, args = words[0], words[1:]
        if command in ("quit", "exit"):
            return False
        method = getattr(self, f"cmd_{command}", None)
        if method is None:
            raise ReplError(f"unknown command {command!r} (try `help`)")
        try:
            method(args)
        except ServeClientError as error:
            raise ReplError(str(error)) from error
        except (ValueError, KeyError) as error:
            raise ReplError(f"{type(error).__name__}: {error}") from error
        return True

    def completer(self, text: str, state: int) -> str | None:
        """Readline tab completion over command names and %i variables."""
        candidates = [name for name in COMMANDS if name.startswith(text)]
        candidates += ["exit"] if "exit".startswith(text) else []
        if text.startswith("%") and self.handle is not None:
            candidates += [f"%{i}" for i in range(len(self.handle.variables))
                           if f"%{i}".startswith(text)]
        matches = sorted(set(candidates))
        return matches[state] if state < len(matches) else None


def run_repl(host: str, port: int, *, timeout: float = 300.0,
             exec_commands: str | None = None) -> int:
    """Entry point used by the ``repro repl`` CLI command."""
    client = ServeClient(host, port, timeout=timeout)
    repl = Repl(client)
    if exec_commands is not None:
        for line in exec_commands.split(";"):
            line = line.strip()
            if not line:
                continue
            try:
                if not repl.run_command(line):
                    return 0
            except ReplError as error:
                print(f"error: {error}")
                return 1
        return 0
    if readline is not None:  # pragma: no branch - trivial
        readline.set_completer(repl.completer)
        readline.set_completer_delims(" \t")
        readline.parse_and_bind("tab: complete")
    print(f"connected to {host}:{port} — `help` lists commands, `quit` leaves")
    while True:
        try:
            line = input(PROMPT)
        except EOFError:
            print()
            return 0
        except KeyboardInterrupt:
            print()
            continue
        try:
            if not repl.run_command(line):
                return 0
        except ReplError as error:
            print(f"error: {error}")


__all__ = ["COMMANDS", "PROMPT", "Repl", "ReplError", "run_repl"]
