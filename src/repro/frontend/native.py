"""Fully self-contained real-binary loading: ELF parsing + from-scratch
disassembly + native DWARF — no gcc/objdump/readelf needed at *load*
time (a compiler is still needed to produce the binary in the first
place).

This is the zero-dependency twin of the objdump/readelf text path; the
test suite cross-validates the two on the same binary.

Real-world stripped-binary corpora are messy: one undecodable function
or one truncated DWARF entry should not kill a whole-corpus job.
:func:`load_binary` therefore takes ``on_error="raise"|"skip"``; with
``"skip"`` it degrades per stage and per function — a function whose
bytes fail to decode is recorded and dropped, damaged debug info yields
whatever variables survive — and the partial :class:`LoadedBinary`
carries a machine-readable :class:`~repro.core.errors.FailureReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.instruction import FunctionListing
from repro.core.errors import FailureReport, handle_failure
from repro.disasm.decoder import decode_function, elf_symbolizer
from repro.dwarf.native import native_variables
from repro.elf.parser import ElfFile
from repro.frontend.readelf import RealVariable


@dataclass
class LoadedBinary:
    """A real binary loaded without external tools.

    ``failures`` enumerates everything that was skipped while loading
    (empty on a clean ``on_error="raise"`` load).
    """

    path: str
    functions: list[FunctionListing]
    variables: list[RealVariable]
    failures: FailureReport = field(default_factory=FailureReport)

    def functions_by_name(self) -> dict[str, FunctionListing]:
        return {f.name: f for f in self.functions}


def load_binary(path, on_error: str = "raise") -> LoadedBinary:
    """Load a real (unstripped) binary: disassemble every function
    symbol with the native decoder and extract typed variables from the
    native DWARF parser.

    With ``on_error="skip"``, per-function decode failures and damaged
    debug info are recorded into the result's ``failures`` report and
    loading continues with partial results; with ``"raise"`` (default)
    the first failure raises a typed :class:`~repro.core.errors.CatiError`
    subclass carrying binary/function context.
    """
    failures = FailureReport()
    name = str(path)
    try:
        elf = ElfFile.load(path, on_error=on_error, failures=failures)
    except Exception as exc:
        handle_failure(exc, on_error=on_error, failures=failures,
                       stage="elf", binary=name)
        return LoadedBinary(path=name, functions=[], variables=[],
                            failures=failures)
    symbolizer = elf_symbolizer(elf)
    functions = []
    for symbol in elf.function_symbols():
        code = elf.text_bytes_for(symbol)
        if not code:
            continue
        try:
            instructions = decode_function(code, symbol.value, symbolizer=symbolizer)
        except Exception as exc:
            handle_failure(exc, on_error=on_error, failures=failures,
                           stage="decode", binary=name, function=symbol.name)
            continue
        functions.append(FunctionListing(
            name=symbol.name, address=symbol.value, instructions=instructions,
        ))
    try:
        variables = [
            RealVariable(function=v.function, name=v.name, rbp_offset=v.rbp_offset,
                         size=v.size, label=v.label)
            for v in native_variables(elf, on_error=on_error, failures=failures)
        ]
    except Exception as exc:
        handle_failure(exc, on_error=on_error, failures=failures,
                       stage="dwarf", binary=name)
        variables = []
    return LoadedBinary(path=name, functions=functions, variables=variables,
                        failures=failures)


def extract_labeled_vucs_native(loaded: LoadedBinary, app: str = "native", window: int = 10):
    """Build a labeled VucDataset from a natively loaded real binary."""
    from repro.vuc.context import extract_vuc
    from repro.vuc.dataflow import VariableExtent, group_targets
    from repro.vuc.dataset import LabeledVuc, VucDataset
    from repro.vuc.generalize import generalize_window
    from repro.vuc.locate import locate_targets

    dataset = VucDataset(window=window)
    for func in loaded.functions:
        func_vars = [v for v in loaded.variables if v.function == func.name]
        if not func_vars:
            continue
        extents = [VariableExtent(v.name, "rbp", v.rbp_offset, max(v.size, 1))
                   for v in func_vars]
        labels = {(e.base, e.offset): v.label for e, v in zip(extents, func_vars)}
        targets = locate_targets(func)
        for group in group_targets(targets, extents, f"{app}/{func.name}"):
            label = labels[(group.extent.base, group.extent.offset)]
            for target in group.targets:
                vuc = extract_vuc(func, target.index, window)
                dataset.samples.append(LabeledVuc(
                    tokens=generalize_window(vuc.window),
                    label=label,
                    variable_id=group.variable_id,
                    binary=loaded.path, app=app, compiler="gcc",
                ))
    return dataset
