"""Parse ``objdump -d`` output into :class:`FunctionListing` IR.

This gives the pipeline a real-GCC front door: the same locator, VUC
extractor and generalizer run unchanged on genuine disassembly.
"""

from __future__ import annotations

import re

from repro.asm.instruction import FunctionListing
from repro.asm.parser import parse_objdump_line

_FUNC_HEADER_RE = re.compile(r"^([0-9a-fA-F]+)\s+<([^>]+)>:\s*$")


def parse_disassembly(text: str) -> list[FunctionListing]:
    """Split an objdump dump into per-function listings.

    Unknown or exotic instructions are kept as mnemonic-only entries so
    window positions stay aligned with the true instruction stream
    (see :func:`repro.asm.parser.parse_objdump_line`).
    """
    functions: list[FunctionListing] = []
    current: FunctionListing | None = None
    for line in text.splitlines():
        header = _FUNC_HEADER_RE.match(line)
        if header:
            if current is not None and current.instructions:
                functions.append(current)
            address, name = header.groups()
            current = FunctionListing(name=name, address=int(address, 16))
            continue
        if current is None:
            continue
        instruction = parse_objdump_line(line)
        if instruction is not None:
            current.instructions.append(instruction)
    if current is not None and current.instructions:
        functions.append(current)
    return functions


def user_functions(functions: list[FunctionListing],
                   names: set[str] | None = None) -> list[FunctionListing]:
    """Filter out PLT stubs, runtime glue and other non-user code."""
    glue_prefixes = ("_", "frame_dummy", "register_tm", "deregister_tm")
    out = []
    for func in functions:
        if names is not None:
            if func.name in names:
                out.append(func)
            continue
        if "@plt" in func.name or func.name.startswith(glue_prefixes):
            continue
        out.append(func)
    return out
