"""Bundled C sources for the real-binary frontend.

Small but type-diverse programs: every leaf type of the taxonomy appears
as a local variable with genuine uses, so one ``gcc -g -O0`` compile
yields a labeled mini-corpus of real GCC codegen.
"""

SAMPLE_MAIN = r"""
#include <stdlib.h>
#include <string.h>
#include <stdbool.h>

struct point { int x; int y; };
struct buffer { char *data; unsigned long len; unsigned long cap; };
enum color { RED, GREEN, BLUE };
typedef unsigned long usize;

int process_ints(int seed) {
    int total = seed;
    int i = 0;
    unsigned int mask = 0xff;
    long big = 1000L;
    for (i = 0; i < 16; i++) {
        total += i;
        mask = mask >> 1;
        big += total;
    }
    if (mask > 3u) total -= 7;
    return total + (int)(big & (long)mask);
}

double process_floats(double start) {
    double acc = start;
    float ratio = 0.5f;
    long double precise = 1.25L;
    int steps = 8;
    while (steps-- > 0) {
        acc = acc * 1.5 + (double)ratio;
        precise = precise + (long double)acc;
    }
    return acc + (double)precise;
}

int process_chars(const char *input) {
    char buf[64];
    char c = 'a';
    unsigned char raw = 0;
    bool seen = false;
    unsigned long n = strlen(input);
    usize limit = n < 63 ? n : 63;
    memcpy(buf, input, limit);
    buf[limit] = 0;
    for (usize k = 0; k < limit; k++) {
        c = buf[k];
        raw = (unsigned char)(raw + (unsigned char)c);
        if (c == 'z') seen = true;
    }
    return seen ? (int)raw : (int)c;
}

int process_pointers(int count) {
    struct point pts[4];
    struct point *p = pts;
    int *cursor = &pts[0].x;
    void *blob = malloc(64);
    enum color tone = GREEN;
    int sum = 0;
    for (int i = 0; i < 4 && i < count; i++) {
        p->x = i;
        p->y = i * 2;
        sum += *cursor;
        p++;
        cursor += 2;
    }
    if (blob != NULL) { memset(blob, 0, 64); free(blob); }
    if (tone == BLUE) sum = -sum;
    return sum;
}

int process_struct(void) {
    struct buffer buf;
    struct point origin;
    short int small = 3;
    unsigned short tiny = 9;
    buf.data = NULL;
    buf.len = 0;
    buf.cap = 128;
    origin.x = (int)small;
    origin.y = (int)tiny;
    return origin.x + origin.y + (int)buf.cap;
}

int main(int argc, char **argv) {
    int a = process_ints(argc);
    double d = process_floats(1.0);
    int b = process_chars(argc > 1 ? argv[1] : "hello");
    int c = process_pointers(argc + 2);
    int s = process_struct();
    return (a + b + c + s + (int)d) & 0x7f;
}
"""

#: (filename, source) pairs the frontend compiles.
SOURCES: tuple[tuple[str, str], ...] = (("sample_main.c", SAMPLE_MAIN),)
