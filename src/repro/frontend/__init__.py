"""Real-binary frontend (optional): compile bundled C with the system
gcc, parse ``objdump -d`` and ``readelf --debug-dump=info`` output, and
feed genuine GCC codegen through the same pipeline as the synthetic
corpus.  Guard usage with :func:`toolchain_available`.
"""

from repro.frontend.compile import (
    CompiledArtifact,
    compile_sample,
    missing_tools,
    require_toolchain,
    toolchain_available,
)
from repro.frontend.objdump import parse_disassembly, user_functions
from repro.frontend.readelf import RealVariable, cfa_to_rbp_offset, extract_real_variables

__all__ = [
    "CompiledArtifact",
    "compile_sample",
    "missing_tools",
    "require_toolchain",
    "toolchain_available",
    "parse_disassembly",
    "user_functions",
    "RealVariable",
    "cfa_to_rbp_offset",
    "extract_real_variables",
    "native_real_variables",
]


def native_real_variables(binary_path) -> list[RealVariable]:
    """Extract variables from a real binary via the pure-Python ELF +
    DWARF parser (:mod:`repro.elf`, :mod:`repro.dwarf.native`) — no
    readelf required.  Returns the same records as
    :func:`extract_real_variables`.
    """
    from repro.dwarf.native import native_variables
    from repro.elf.parser import ElfFile

    return [
        RealVariable(
            function=v.function, name=v.name,
            rbp_offset=v.rbp_offset, size=v.size, label=v.label,
        )
        for v in native_variables(ElfFile.load(binary_path))
    ]
