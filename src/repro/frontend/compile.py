"""Drive the system toolchain: compile bundled C with ``gcc -g``, then
disassemble with ``objdump`` and dump DWARF with ``readelf``.

Everything degrades gracefully: :func:`toolchain_available` lets callers
(tests, examples) skip when gcc/objdump/readelf are missing.
"""

from __future__ import annotations

import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.frontend.csamples import SOURCES

REQUIRED_TOOLS = ("gcc", "objdump", "readelf")


def toolchain_available() -> bool:
    """True when gcc, objdump and readelf are all on PATH."""
    return all(shutil.which(tool) for tool in REQUIRED_TOOLS)


@dataclass
class CompiledArtifact:
    """One real compiled binary plus its tool dumps."""

    name: str
    binary_path: Path
    disassembly: str      # objdump -d output
    dwarf_dump: str       # readelf --debug-dump=info output


def compile_sample(
    source_name: str = "sample_main.c",
    opt_level: int = 0,
    workdir: str | None = None,
) -> CompiledArtifact:
    """Compile one bundled sample and capture its tool dumps."""
    if not toolchain_available():
        raise RuntimeError("gcc/objdump/readelf not available")
    source = dict(SOURCES)[source_name]
    directory = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="repro-frontend-"))
    directory.mkdir(parents=True, exist_ok=True)
    source_path = directory / source_name
    source_path.write_text(source)
    binary_path = directory / source_name.replace(".c", "")
    subprocess.run(
        ["gcc", f"-O{opt_level}", "-g", "-fno-omit-frame-pointer",
         "-o", str(binary_path), str(source_path)],
        check=True, capture_output=True,
    )
    disassembly = subprocess.run(
        ["objdump", "-d", str(binary_path)],
        check=True, capture_output=True, text=True,
    ).stdout
    dwarf_dump = subprocess.run(
        ["readelf", "--debug-dump=info", str(binary_path)],
        check=True, capture_output=True, text=True,
    ).stdout
    return CompiledArtifact(
        name=source_name.replace(".c", ""),
        binary_path=binary_path,
        disassembly=disassembly,
        dwarf_dump=dwarf_dump,
    )
