"""Drive the system toolchain: compile bundled C with ``gcc -g``, then
disassemble with ``objdump`` and dump DWARF with ``readelf``.

Everything degrades gracefully: :func:`toolchain_available` /
:func:`missing_tools` let callers (tests, examples) skip when
gcc/objdump/readelf are missing, and every tool invocation goes through
the hardened :func:`repro.core.toolchain.run_tool` wrapper — configurable
timeout, bounded retry on transient failures, and a typed
:class:`~repro.core.errors.ToolchainError` (naming the exact tool, with
its stderr attached) instead of a bare ``CalledProcessError``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import ToolchainError
from repro.core.toolchain import (
    DEFAULT_TOOL_RETRIES,
    DEFAULT_TOOL_TIMEOUT,
    run_tool,
    which_missing,
)
from repro.frontend.csamples import SOURCES

REQUIRED_TOOLS = ("gcc", "objdump", "readelf")


def missing_tools() -> tuple[str, ...]:
    """The subset of gcc/objdump/readelf not found on PATH."""
    return which_missing(REQUIRED_TOOLS)


def toolchain_available() -> bool:
    """True when gcc, objdump and readelf are all on PATH."""
    return not missing_tools()


def require_toolchain() -> None:
    """Raise a skip-friendly ToolchainError naming every missing tool."""
    missing = missing_tools()
    if missing:
        raise ToolchainError(
            f"required tool(s) not on PATH: {', '.join(missing)}",
            tool=missing[0], missing=True, missing_tools=missing,
            stage="toolchain",
        )


@dataclass
class CompiledArtifact:
    """One real compiled binary plus its tool dumps."""

    name: str
    binary_path: Path
    disassembly: str      # objdump -d output
    dwarf_dump: str       # readelf --debug-dump=info output


def compile_sample(
    source_name: str = "sample_main.c",
    opt_level: int = 0,
    workdir: str | None = None,
    tool_timeout: float = DEFAULT_TOOL_TIMEOUT,
    tool_retries: int = DEFAULT_TOOL_RETRIES,
    runner=None,
) -> CompiledArtifact:
    """Compile one bundled sample and capture its tool dumps.

    ``tool_timeout``/``tool_retries`` bound each external tool run;
    ``runner`` is the fault-injection seam (a ``subprocess.run``
    stand-in) used by the robustness suite.
    """
    require_toolchain()
    source = dict(SOURCES)[source_name]
    directory = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="repro-frontend-"))
    directory.mkdir(parents=True, exist_ok=True)
    source_path = directory / source_name
    source_path.write_text(source)
    binary_path = directory / source_name.replace(".c", "")
    name = source_name.replace(".c", "")
    knobs = dict(timeout=tool_timeout, retries=tool_retries,
                 binary=name, runner=runner)
    run_tool(
        ["gcc", f"-O{opt_level}", "-g", "-fno-omit-frame-pointer",
         "-o", str(binary_path), str(source_path)],
        **knobs,
    )
    disassembly = run_tool(["objdump", "-d", str(binary_path)], **knobs).stdout
    dwarf_dump = run_tool(
        ["readelf", "--debug-dump=info", str(binary_path)], **knobs,
    ).stdout
    return CompiledArtifact(
        name=name,
        binary_path=binary_path,
        disassembly=disassembly,
        dwarf_dump=dwarf_dump,
    )
