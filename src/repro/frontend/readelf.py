"""Parse ``readelf --debug-dump=info`` text into our DIE model.

Real DWARF (as dumped by readelf) maps cleanly onto the
:mod:`repro.dwarf.dies` subset: we keep the tags/attributes the resolver
needs and drop the rest.  Variable locations arrive as
``DW_OP_fbreg: N`` against a ``DW_OP_call_frame_cfa`` frame base; for
rbp-framed gcc code the CFA sits at ``%rbp + 16``, so the instruction-
level displacement is ``N + 16`` — the conversion
:func:`cfa_to_rbp_offset` applies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.types import TypeName
from repro.dwarf.dies import Attr, Die, Tag
from repro.dwarf.resolver import UnresolvableType, resolve_type

#: CFA = rbp + 16 in the standard gcc -O0 rbp-framed prologue.
CFA_TO_RBP = 16

_DIE_HEADER_RE = re.compile(
    r"^\s*<(\d+)><([0-9a-fA-F]+)>:\s+Abbrev Number:\s+(\d+)(?:\s+\(DW_TAG_(\w+)\))?"
)
_ATTR_RE = re.compile(r"^\s*<[0-9a-fA-F]+>\s+DW_AT_(\w+)\s*:\s*(.*)$")
_TYPE_REF_RE = re.compile(r"<0x([0-9a-fA-F]+)>")
_FBREG_RE = re.compile(r"DW_OP_fbreg:\s*(-?\d+)")
_INDIRECT_NAME_RE = re.compile(r"\(indirect(?: line)? string, offset: (?:0x)?[0-9a-fA-F]+\):\s*(.*)$")

_TAG_MAP = {
    "compile_unit": Tag.COMPILE_UNIT,
    "subprogram": Tag.SUBPROGRAM,
    "variable": Tag.VARIABLE,
    "formal_parameter": Tag.FORMAL_PARAMETER,
    "base_type": Tag.BASE_TYPE,
    "pointer_type": Tag.POINTER_TYPE,
    "structure_type": Tag.STRUCTURE_TYPE,
    "union_type": Tag.UNION_TYPE,
    "array_type": Tag.ARRAY_TYPE,
    "enumeration_type": Tag.ENUMERATION_TYPE,
    "typedef": Tag.TYPEDEF,
    "const_type": Tag.CONST_TYPE,
    "volatile_type": Tag.VOLATILE_TYPE,
    "member": Tag.MEMBER,
}


@dataclass
class RealVariable:
    """One variable recovered from real DWARF."""

    function: str
    name: str
    rbp_offset: int      # instruction-level displacement off %rbp
    size: int
    label: TypeName


def cfa_to_rbp_offset(fbreg_offset: int) -> int:
    """Convert a DW_OP_fbreg (CFA-relative) offset to an rbp displacement."""
    return fbreg_offset + CFA_TO_RBP


@dataclass
class _RawDie:
    depth: int
    offset: int
    tag: Tag | None
    attrs: dict[str, str] = field(default_factory=dict)
    die: Die | None = None
    upper_bound: int | None = None


def _clean_name(raw: str) -> str:
    match = _INDIRECT_NAME_RE.search(raw)
    if match:
        return match.group(1).strip()
    return raw.strip()


def parse_dwarf_dump(text: str) -> list[_RawDie]:
    """First pass: flat list of raw DIEs with their textual attributes."""
    raw: list[_RawDie] = []
    current: _RawDie | None = None
    for line in text.splitlines():
        header = _DIE_HEADER_RE.match(line)
        if header:
            depth_s, offset_s, abbrev_s, tag_name = header.groups()
            if abbrev_s == "0":
                current = None
                continue
            tag = _TAG_MAP.get(tag_name or "")
            current = _RawDie(depth=int(depth_s), offset=int(offset_s, 16), tag=tag)
            raw.append(current)
            continue
        if current is None:
            continue
        attr = _ATTR_RE.match(line)
        if attr:
            current.attrs[attr.group(1)] = attr.group(2).strip()
    return raw


def build_die_graph(raw: list[_RawDie]) -> dict[int, Die]:
    """Second pass: materialize Die objects, resolve type references."""
    by_offset: dict[int, _RawDie] = {}
    for entry in raw:
        if entry.tag is None:
            continue
        die = Die(entry.tag)
        name = entry.attrs.get("name")
        if name is not None:
            die.attrs[Attr.NAME] = _clean_name(name)
        size = entry.attrs.get("byte_size")
        if size is not None:
            try:
                die.attrs[Attr.BYTE_SIZE] = int(size.split()[0], 0)
            except ValueError:
                pass
        encoding = entry.attrs.get("encoding")
        if encoding is not None:
            try:
                die.attrs[Attr.ENCODING] = int(encoding.split()[0], 0)
            except ValueError:
                pass
        location = entry.attrs.get("location", "")
        fbreg = _FBREG_RE.search(location)
        if fbreg:
            die.attrs[Attr.LOCATION] = int(fbreg.group(1))
        entry.die = die
        by_offset[entry.offset] = entry

    # Wire DW_AT_type references and parent/child structure.
    stack: list[_RawDie] = []
    for entry in raw:
        if entry.tag is None or entry.die is None:
            continue
        type_text = entry.attrs.get("type")
        if type_text:
            ref = _TYPE_REF_RE.search(type_text)
            if ref:
                target = by_offset.get(int(ref.group(1), 16))
                if target is not None and target.die is not None:
                    entry.die.attrs[Attr.TYPE] = target.die
        while stack and stack[-1].depth >= entry.depth:
            stack.pop()
        if stack and stack[-1].die is not None:
            stack[-1].die.children.append(entry.die)
        stack.append(entry)

    # Synthesize array byte sizes from subrange upper bounds.
    for entry in raw:
        if entry.tag is Tag.ARRAY_TYPE and entry.die is not None:
            count = _array_count(entry, raw)
            element = entry.die.type_ref
            element_size = element.byte_size if element is not None and element.byte_size else 1
            if count is not None:
                entry.die.attrs[Attr.BYTE_SIZE] = count * element_size
    return {offset: e.die for offset, e in by_offset.items() if e.die is not None}


_UPPER_BOUND_RE = re.compile(r"^\s*<[0-9a-fA-F]+>\s+DW_AT_upper_bound\s*:\s*(\d+)")


def _array_count(array_entry: _RawDie, raw: list[_RawDie]) -> int | None:
    position = raw.index(array_entry)
    for entry in raw[position + 1:position + 4]:
        bound = entry.attrs.get("upper_bound")
        if bound is not None:
            try:
                return int(bound.split()[0]) + 1
            except ValueError:
                return None
        if entry.depth <= array_entry.depth:
            break
    return None


def extract_real_variables(dwarf_dump: str) -> list[RealVariable]:
    """End-to-end: readelf text → labeled, located variables.

    Variables without an fbreg location or with types outside the
    taxonomy are skipped (same exclusions as the synthetic path).
    """
    raw = parse_dwarf_dump(dwarf_dump)
    build_die_graph(raw)
    out: list[RealVariable] = []
    current_function = "?"
    for entry in raw:
        if entry.tag is Tag.SUBPROGRAM and entry.die is not None:
            current_function = entry.die.name or "?"
            continue
        if entry.tag not in (Tag.VARIABLE, Tag.FORMAL_PARAMETER) or entry.die is None:
            continue
        location = entry.die.location
        if location is None:
            continue
        type_die = entry.die.type_ref
        try:
            label = resolve_type(type_die)
        except UnresolvableType:
            continue
        size = _type_size(type_die)
        out.append(RealVariable(
            function=current_function,
            name=entry.die.name or "?",
            rbp_offset=cfa_to_rbp_offset(location),
            size=size,
            label=label,
        ))
    return out


def _type_size(die: Die | None) -> int:
    for _ in range(32):
        if die is None:
            return 8
        if die.byte_size is not None:
            return die.byte_size
        if die.tag in (Tag.TYPEDEF, Tag.CONST_TYPE, Tag.VOLATILE_TYPE):
            die = die.type_ref
            continue
        if die.tag is Tag.POINTER_TYPE:
            return 8
        return 8
    return 8
