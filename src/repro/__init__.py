"""repro — a full reproduction of CATI: Context-Assisted Type Inference
from Stripped Binaries (Chen, He, Mao — DSN 2020).

Public API tour:

* :class:`repro.core.Cati` — the trained system: ``train`` on a
  :class:`repro.vuc.VucDataset`, ``infer_binary`` on stripped binaries.
* :mod:`repro.codegen` — the synthetic compiler substrate (GCC/Clang
  conventions, -O0..-O3, DWARF-like debug info, stripping).
* :mod:`repro.vuc` — variable location, VUC extraction, generalization.
* :mod:`repro.embedding` / :mod:`repro.nn` — from-scratch Word2Vec and
  the CNN library.
* :mod:`repro.baselines` — DEBIN/TypeMiner/rule-ladder comparators.
* :mod:`repro.datasets` / :mod:`repro.experiments` — corpora and the
  per-table/figure reproduction harness.
* :mod:`repro.frontend` — optional real-binary path via gcc/objdump/readelf.
* :mod:`repro.serve` — the batching inference daemon
  (``python -m repro serve``) with admission control and hot reload.
* :mod:`repro.analysis` — stateful interactive analysis sessions on
  the daemon; ``python -m repro repl`` is the client.
"""

__version__ = "1.2.0"

_LAZY = {
    "Cati": ("repro.core.pipeline", "Cati"),
    "CatiConfig": ("repro.core.config", "CatiConfig"),
    "TypeName": ("repro.core.types", "TypeName"),
    "VucDataset": ("repro.vuc.dataset", "VucDataset"),
    "extract_labeled_vucs": ("repro.vuc.dataset", "extract_labeled_vucs"),
    "GccCompiler": ("repro.codegen.compilers", "GccCompiler"),
    "ClangCompiler": ("repro.codegen.compilers", "ClangCompiler"),
    "strip": ("repro.codegen.strip", "strip"),
    "build_corpus": ("repro.datasets.corpus", "build_corpus"),
    "build_small_corpus": ("repro.datasets.corpus", "build_small_corpus"),
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target[0]), target[1])
    globals()[name] = value
    return value


__all__ = list(_LAZY)
