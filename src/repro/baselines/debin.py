"""DEBIN stand-in: a dependency-graph probabilistic model.

DEBIN (He et al., CCS'18) predicts types with a Conditional Random Field
over a dependency graph: unary factors from each variable's own
instruction features, pairwise factors between related variables, MAP
decoding.  Our stand-in keeps that exact information structure —
variable-local unary features (**no instruction context**, which is
CATI's differentiator) plus pairwise same-function co-occurrence factors
— with learned logistic unaries and empirical pairwise potentials,
decoded by iterated conditional modes (ICM).

The label set is configurable so the §VII-B comparison can run on the
17-type DEBIN task while ablations can run it on CATI's 19 types.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.baselines.features import variable_features
from repro.baselines.linear import SoftmaxRegression
from repro.vuc.dataset import LabeledVuc


def _function_scope(variable_id: str) -> str:
    """The function part of a variable id (everything before the slot)."""
    return variable_id.rsplit("::", 1)[0]


@dataclass
class DebinConfig:
    feature_dim: int = 512
    epochs: int = 150
    learning_rate: float = 0.05
    pairwise_weight: float = 0.35
    icm_rounds: int = 3
    laplace: float = 1.0
    seed: int = 0


class DebinModel:
    """Unary logistic factors + pairwise co-occurrence + ICM decoding."""

    def __init__(self, labels: Sequence[Hashable], config: DebinConfig | None = None) -> None:
        self.labels = list(labels)
        self.label_index = {label: i for i, label in enumerate(self.labels)}
        self.config = config or DebinConfig()
        self.unary: SoftmaxRegression | None = None
        self.log_pairwise: np.ndarray | None = None

    # -- training ---------------------------------------------------------------

    def train(
        self,
        groups: dict[str, list[LabeledVuc]],
        labels: dict[str, Hashable],
    ) -> "DebinModel":
        """Fit unary factors and the pairwise co-occurrence matrix."""
        ids, x = variable_features(groups, self.config.feature_dim)
        y = np.asarray([self.label_index[labels[vid]] for vid in ids], dtype=np.int64)
        self.unary = SoftmaxRegression(
            self.config.feature_dim, len(self.labels), seed=self.config.seed,
        )
        self.unary.fit(x, y, epochs=self.config.epochs,
                       learning_rate=self.config.learning_rate, seed=self.config.seed)

        # Pairwise: how often types co-occur among variables of one function.
        counts = np.full((len(self.labels), len(self.labels)), self.config.laplace)
        by_function: dict[str, list[int]] = defaultdict(list)
        for vid in ids:
            by_function[_function_scope(vid)].append(self.label_index[labels[vid]])
        for members in by_function.values():
            histogram = Counter(members)
            for a in histogram:
                for b in histogram:
                    if a == b:
                        counts[a, b] += histogram[a] * (histogram[a] - 1)
                    else:
                        counts[a, b] += histogram[a] * histogram[b]
        probs = counts / counts.sum(axis=1, keepdims=True)
        self.log_pairwise = np.log(probs)
        return self

    # -- inference ------------------------------------------------------------------

    def predict(self, groups: dict[str, list[LabeledVuc]]) -> dict[str, Hashable]:
        """MAP-ish decoding: logistic unaries refined by ICM over functions."""
        if self.unary is None or self.log_pairwise is None:
            raise RuntimeError("train() first")
        ids, x = variable_features(groups, self.config.feature_dim)
        if not ids:
            return {}
        log_unary = np.log(np.clip(self.unary.predict_proba(x), 1e-12, None))
        assignment = log_unary.argmax(axis=1)

        by_function: dict[str, list[int]] = defaultdict(list)
        for position, vid in enumerate(ids):
            by_function[_function_scope(vid)].append(position)

        weight = self.config.pairwise_weight
        for _round in range(self.config.icm_rounds):
            changed = 0
            for members in by_function.values():
                if len(members) < 2:
                    continue
                for position in members:
                    neighbor_labels = [assignment[m] for m in members if m != position]
                    pair_score = self.log_pairwise[:, neighbor_labels].sum(axis=1)
                    score = log_unary[position] + weight * pair_score
                    new_label = int(score.argmax())
                    if new_label != assignment[position]:
                        assignment[position] = new_label
                        changed += 1
            if changed == 0:
                break
        return {vid: self.labels[assignment[i]] for i, vid in enumerate(ids)}
