"""Rule-based type inference — the IDA-style expert-knowledge reference.

A hand-written decision procedure over a variable's target instructions,
encoding the classic reverse-engineering heuristics (TIE/REWARDS/IDA
lore): SSE traffic widths for float/double, x87 for long double, setcc +
byte slots for bool, sign/zero extensions for char signedness, 8-byte
slots that get dereferenced for pointers, access-width ladders for the
int family.  No learning involved — this is the "endless rules" approach
the paper's introduction argues against, included as a reference point.
"""

from __future__ import annotations

from collections import Counter

from repro.core.types import TypeName
from repro.vuc.dataset import LabeledVuc


def classify_variable(vucs: list[LabeledVuc]) -> TypeName:
    """Apply the rule ladder to one variable's target instructions."""
    mnemonics = [v.target_tokens[0] for v in vucs]
    operand_text = " ".join(" ".join(v.target_tokens[1:]) for v in vucs)
    counts = Counter(mnemonics)

    # Floating point first: unambiguous mnemonics.
    if any(m in ("fldt", "fstpt") for m in mnemonics):
        return TypeName.LONG_DOUBLE
    sse_double = sum(counts[m] for m in ("movsd", "addsd", "subsd", "mulsd", "divsd", "ucomisd"))
    sse_float = sum(counts[m] for m in ("movss", "addss", "subss", "mulss", "divss", "ucomiss"))
    if sse_double or sse_float:
        return TypeName.DOUBLE if sse_double >= sse_float else TypeName.FLOAT

    # Width census over suffixed mnemonics.
    widths = Counter()
    for m in mnemonics:
        # Extension moves carry both width and signedness; match them
        # before the generic suffix ladder would misread their last letter.
        if m in ("movsbl", "movsbq", "movsbw"):
            widths["schar"] += 1
        elif m in ("movzbl", "movzbq", "movzbw"):
            widths["uchar"] += 1
        elif m in ("movswl", "movswq"):
            widths["sshort"] += 1
        elif m in ("movzwl", "movzwq"):
            widths["ushort"] += 1
        elif m == "lea":
            widths["lea"] += 1
        elif m == "mov":
            widths[8] += 1  # unsuffixed 64-bit move
        elif m.endswith("b") and m not in ("sub",):
            widths[1] += 1
        elif m.endswith("w") and m != "cltw":
            widths[2] += 1
        elif m.endswith("l") and m not in ("call", "cmovl", "jl", "setl"):
            widths[4] += 1
        elif m.endswith("q") and m not in ("jmpq",):
            widths[8] += 1

    # Pointer evidence: 8-byte traffic plus dereference/advance/null-check.
    deref_like = any("(%r" in " ".join(v.target_tokens[1:])
                     and "(%rbp" not in " ".join(v.target_tokens[1:])
                     and "(%rsp" not in " ".join(v.target_tokens[1:])
                     for v in vucs)
    eight_byte = widths[8] > 0
    if eight_byte and (deref_like or counts["addq"] > 0):
        # Pointer kind: struct* when derefs hit interior offsets.
        if "IMM(%r" in operand_text:
            return TypeName.STRUCT_POINTER
        return TypeName.ARITH_POINTER
    if eight_byte and counts["cmpq"] > 0 and widths[1] == 0 and widths[4] == 0:
        return TypeName.VOID_POINTER

    # Bool: byte slot fed from setcc or compared against 0 with cmpb.
    if widths[1] and any(m.startswith("set") for m in mnemonics):
        return TypeName.BOOL
    if counts["cmpb"] and not widths["schar"] and not widths["uchar"]:
        return TypeName.BOOL

    # Char family via extension moves.
    if widths["schar"]:
        return TypeName.CHAR
    if widths["uchar"]:
        return TypeName.UNSIGNED_CHAR
    if widths[1]:
        return TypeName.CHAR
    if widths["sshort"]:
        return TypeName.SHORT_INT
    if widths["ushort"]:
        return TypeName.SHORT_UNSIGNED_INT
    if widths[2]:
        return TypeName.SHORT_INT

    # lea of the slot (address taken / aggregate): call it struct.
    if widths["lea"] and not widths[4] and not widths[8]:
        return TypeName.STRUCT

    # Int family by width and signedness cues.
    unsigned_cues = sum(counts[m] for m in ("shrl", "shrq", "andl", "orl", "xorl"))
    unsigned_jcc = 0  # branch direction is in the context, invisible here
    if widths[8] > widths[4]:
        if unsigned_cues:
            return TypeName.LONG_UNSIGNED_INT
        return TypeName.LONG_INT
    if unsigned_cues >= 2:
        return TypeName.UNSIGNED_INT
    return TypeName.INT


def predict(groups: dict[str, list[LabeledVuc]]) -> dict[str, TypeName]:
    """Classify every variable in a grouping with the rule ladder."""
    return {vid: classify_variable(vucs) for vid, vucs in groups.items()}
