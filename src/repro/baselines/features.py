"""Variable-local feature extraction shared by the baselines.

The defining property of every comparator (DEBIN, TypeMiner, rule
engines) relative to CATI is that their features come from the
variable's *own* instructions (its def-use chain), not from the
surrounding instruction context.  This module builds exactly that: a
hashed bag-of-n-grams over the generalized target instructions of one
variable.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.vuc.dataset import LabeledVuc, target_signature


def _bucket(token: str, dim: int) -> int:
    digest = hashlib.blake2s(token.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "little") % dim


def variable_feature_vector(vucs: list[LabeledVuc], dim: int = 512) -> np.ndarray:
    """Hashed bag of unigrams+bigrams over the variable's target instructions."""
    vec = np.zeros(dim, dtype=np.float32)
    for vuc in vucs:
        tokens = list(vuc.target_tokens)
        text = target_signature(vuc)
        for token in tokens:
            vec[_bucket("u:" + token, dim)] += 1.0
        for a, b in zip(tokens, tokens[1:]):
            vec[_bucket(f"b:{a}|{b}", dim)] += 1.0
        vec[_bucket("i:" + text, dim)] += 1.0
    norm = np.linalg.norm(vec)
    return vec / norm if norm > 0 else vec


def variable_features(
    groups: dict[str, list[LabeledVuc]],
    dim: int = 512,
) -> tuple[list[str], np.ndarray]:
    """Feature matrix over a variable grouping; returns (ids, [N, dim])."""
    ids = list(groups)
    matrix = np.stack([variable_feature_vector(groups[vid], dim) for vid in ids]) \
        if ids else np.zeros((0, dim), dtype=np.float32)
    return ids, matrix
