"""Baseline comparators, all restricted to variable-local information
(no instruction context — CATI's differentiator): a DEBIN-style
dependency-graph model, a TypeMiner-style n-gram classifier and an
IDA-style rule ladder.  See DESIGN.md §2 for the substitution argument.
"""

from repro.baselines.debin import DebinConfig, DebinModel
from repro.baselines.features import variable_feature_vector, variable_features
from repro.baselines.linear import SoftmaxRegression
from repro.baselines.rules import classify_variable
from repro.baselines.rules import predict as rules_predict
from repro.baselines.typeminer import TypeMinerConfig, TypeMinerModel

__all__ = [
    "DebinConfig",
    "DebinModel",
    "variable_feature_vector",
    "variable_features",
    "SoftmaxRegression",
    "classify_variable",
    "rules_predict",
    "TypeMinerConfig",
    "TypeMinerModel",
]
