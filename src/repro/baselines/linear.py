"""Multinomial logistic regression (softmax regression) in numpy.

The workhorse classifier of the baseline stand-ins; trained full-batch
with Adam, L2-regularized.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import cross_entropy, softmax


class SoftmaxRegression:
    """Linear classifier with softmax output."""

    def __init__(self, n_features: int, n_classes: int, l2: float = 1e-4, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.weight = (rng.normal(size=(n_features, n_classes)) * 0.01).astype(np.float32)
        self.bias = np.zeros(n_classes, dtype=np.float32)
        self.l2 = l2

    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int = 200,
            learning_rate: float = 0.05, batch_size: int = 256, seed: int = 0) -> None:
        from repro.nn.optimizers import Adam

        optimizer = Adam(learning_rate)
        rng = np.random.default_rng(seed)
        d_weight = np.zeros_like(self.weight)
        d_bias = np.zeros_like(self.bias)
        n = len(x)
        for _epoch in range(epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start:start + batch_size]
                xb, yb = x[idx], y[idx]
                logits = xb @ self.weight + self.bias
                _loss, grad = cross_entropy(logits, yb)
                d_weight[...] = xb.T @ grad + self.l2 * self.weight
                d_bias[...] = grad.sum(axis=0)
                optimizer.step([("w", self.weight, d_weight), ("b", self.bias, d_bias)])

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return softmax(x @ self.weight + self.bias)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.predict_proba(x).argmax(axis=1)
