"""TypeMiner stand-in: n-gram features over the variable's own trace.

TypeMiner (Maier et al., DIMVA'19) classifies a variable from n-grams of
the instructions on its data-object trace (def-use chain) with a
conventional classifier, ignoring unrelated surrounding instructions.
It reports that variables with short traces cannot be predicted well and
drops them — we keep that behavior switchable (``min_trace``) so the
orphan-variable gap the paper highlights is measurable.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.baselines.features import variable_features
from repro.baselines.linear import SoftmaxRegression
from repro.vuc.dataset import LabeledVuc


@dataclass
class TypeMinerConfig:
    feature_dim: int = 512
    epochs: int = 150
    learning_rate: float = 0.05
    min_trace: int = 0      # TypeMiner proper drops variables with short traces
    seed: int = 0


class TypeMinerModel:
    """n-gram bag + softmax regression over variable-local instructions."""

    def __init__(self, labels: Sequence[Hashable], config: TypeMinerConfig | None = None) -> None:
        self.labels = list(labels)
        self.label_index = {label: i for i, label in enumerate(self.labels)}
        self.config = config or TypeMinerConfig()
        self.model: SoftmaxRegression | None = None

    def train(
        self,
        groups: dict[str, list[LabeledVuc]],
        labels: dict[str, Hashable],
    ) -> "TypeMinerModel":
        usable = {vid: vucs for vid, vucs in groups.items()
                  if len(vucs) >= self.config.min_trace}
        ids, x = variable_features(usable, self.config.feature_dim)
        y = np.asarray([self.label_index[labels[vid]] for vid in ids], dtype=np.int64)
        self.model = SoftmaxRegression(
            self.config.feature_dim, len(self.labels), seed=self.config.seed,
        )
        if len(ids):
            self.model.fit(x, y, epochs=self.config.epochs,
                           learning_rate=self.config.learning_rate, seed=self.config.seed)
        return self

    def predict(self, groups: dict[str, list[LabeledVuc]]) -> dict[str, Hashable]:
        """Per-variable predictions; short-trace variables are skipped
        when ``min_trace`` > 1 (TypeMiner's documented behavior)."""
        if self.model is None:
            raise RuntimeError("train() first")
        usable = {vid: vucs for vid, vucs in groups.items()
                  if len(vucs) >= self.config.min_trace}
        ids, x = variable_features(usable, self.config.feature_dim)
        if not ids:
            return {}
        predictions = self.model.predict(x)
        return {vid: self.labels[predictions[i]] for i, vid in enumerate(ids)}
