"""Mnemonic metadata for the x86-64 subset our pipeline understands.

CATI never interprets instructions operationally; it only needs coarse
semantic categories:

* does the instruction *access memory through an operand* (so a stack-slot
  operand marks a variable access),
* is it a control-flow transfer (jumps/calls get ``ADDR``/``FUNC``
  generalization, Table II of the paper),
* what access width does the mnemonic suffix imply (``movb`` = 1 byte),
* is it SSE floating-point traffic (strong float/double signal).

The tables below cover every mnemonic our code generator emits plus the
common extras found in real GCC output so the objdump frontend parses
cleanly.
"""

from __future__ import annotations

#: AT&T width suffixes → byte widths.
WIDTH_SUFFIXES: dict[str, int] = {"b": 1, "w": 2, "l": 4, "q": 8}

#: Data-movement mnemonics (including suffixed forms added below).
_MOVE_BASES = {
    "mov", "movabs", "lea", "push", "pop", "cmov", "xchg",
}

#: Sign/zero extension moves: movslq, movzbl, movsbl, movzwl, movswl ...
_EXTEND_PREFIXES = ("movs", "movz")

#: Integer ALU bases.
_ALU_BASES = {
    "add", "sub", "imul", "mul", "idiv", "div", "and", "or", "xor",
    "not", "neg", "inc", "dec", "shl", "shr", "sar", "sal", "cmp",
    "test", "lea", "adc", "sbb", "rol", "ror",
}

#: SSE scalar floating-point mnemonics (float = ss, double = sd).
SSE_MNEMONICS = frozenset({
    "movss", "movsd", "addss", "addsd", "subss", "subsd",
    "mulss", "mulsd", "divss", "divsd", "ucomiss", "ucomisd",
    "comiss", "comisd", "cvtsi2ss", "cvtsi2sd", "cvtss2sd", "cvtsd2ss",
    "cvttss2si", "cvttsd2si", "cvtsi2ssl", "cvtsi2sdl", "cvtsi2ssq",
    "cvtsi2sdq", "cvttss2sil", "cvttsd2sil", "cvttss2siq", "cvttsd2siq",
    "pxor", "xorps", "xorpd", "movaps", "movapd",
    "sqrtss", "sqrtsd", "maxss", "maxsd", "minss", "minsd",
})

#: x87 mnemonics (long double traffic).
X87_MNEMONICS = frozenset({
    "fld", "fldt", "flds", "fldl", "fld1", "fldz", "fst", "fstp",
    "fstpt", "fstps", "fstpl", "fadd", "faddp", "fsub", "fsubp",
    "fsubrp", "fmul", "fmulp", "fdiv", "fdivp", "fdivrp", "fxch",
    "fucomi", "fucomip", "fcomi", "fcomip", "fild", "fildl", "fildq",
    "fistp", "fistpl", "fistpq", "fchs", "fabs",
})

#: Unconditional and conditional jump mnemonics.
JUMP_MNEMONICS = frozenset({
    "jmp", "je", "jne", "jz", "jnz", "jg", "jge", "jl", "jle",
    "ja", "jae", "jb", "jbe", "js", "jns", "jo", "jno", "jp", "jnp",
})

#: Call/return mnemonics.
CALL_MNEMONICS = frozenset({"call", "callq"})
RET_MNEMONICS = frozenset({"ret", "retq", "leave", "leaveq", "hlt", "ud2"})

#: setcc family — writes a bool-like byte.
SETCC_MNEMONICS = frozenset({
    "sete", "setne", "setz", "setnz", "setg", "setge", "setl", "setle",
    "seta", "setae", "setb", "setbe", "sets", "setns",
})

#: cmovcc family.
CMOV_MNEMONICS = frozenset({
    "cmove", "cmovne", "cmovg", "cmovge", "cmovl", "cmovle",
    "cmova", "cmovae", "cmovb", "cmovbe", "cmovs", "cmovns",
})

#: Miscellaneous zero-operand / housekeeping mnemonics seen in real output.
MISC_MNEMONICS = frozenset({
    "nop", "nopw", "nopl", "cltq", "cltd", "cqto", "cwtl", "cdqe",
    "endbr64", "cpuid", "rdtsc", "syscall",
})


def _expand_widths(bases: set[str]) -> frozenset[str]:
    """Generate the suffixed variants of base mnemonics: mov → movb/w/l/q."""
    out: set[str] = set()
    for base in bases:
        out.add(base)
        for suffix in WIDTH_SUFFIXES:
            out.add(base + suffix)
    return frozenset(out)


MOVE_MNEMONICS = _expand_widths(set(_MOVE_BASES))
ALU_MNEMONICS = _expand_widths(set(_ALU_BASES))

#: Sign/zero extension forms GCC actually emits.
EXTEND_MNEMONICS = frozenset({
    "movslq", "movsbl", "movsbq", "movsbw", "movswl", "movswq",
    "movzbl", "movzbq", "movzbw", "movzwl", "movzwq",
    "cbtw",
})

#: The complete known-mnemonic universe.
ALL_MNEMONICS = frozenset().union(
    MOVE_MNEMONICS, ALU_MNEMONICS, SSE_MNEMONICS, X87_MNEMONICS,
    JUMP_MNEMONICS, CALL_MNEMONICS, RET_MNEMONICS, SETCC_MNEMONICS,
    CMOV_MNEMONICS, MISC_MNEMONICS, EXTEND_MNEMONICS,
)


def is_jump(mnemonic: str) -> bool:
    """True for conditional and unconditional jumps."""
    return mnemonic in JUMP_MNEMONICS


def is_call(mnemonic: str) -> bool:
    """True for call instructions."""
    return mnemonic in CALL_MNEMONICS


def is_control_flow(mnemonic: str) -> bool:
    """True for any instruction whose operand is a code address."""
    return mnemonic in JUMP_MNEMONICS or mnemonic in CALL_MNEMONICS


def is_sse(mnemonic: str) -> bool:
    """True for SSE scalar floating-point mnemonics."""
    return mnemonic in SSE_MNEMONICS


def is_x87(mnemonic: str) -> bool:
    """True for x87 floating-point mnemonics."""
    return mnemonic in X87_MNEMONICS


def access_width(mnemonic: str) -> int | None:
    """Byte width implied by the mnemonic, or None when not width-suffixed.

    >>> access_width("movl")
    4
    >>> access_width("movsd")
    8
    >>> access_width("mov") is None
    True
    """
    if mnemonic in ("movss", "cvtsi2ss", "addss", "subss", "mulss", "divss"):
        return 4
    if mnemonic in ("movsd", "cvtsi2sd", "addsd", "subsd", "mulsd", "divsd"):
        return 8
    if mnemonic in EXTEND_MNEMONICS and len(mnemonic) >= 6:
        # movzbl: source width b (1); we report the *memory* access width.
        return WIDTH_SUFFIXES.get(mnemonic[4], None)
    if mnemonic in SETCC_MNEMONICS:
        return 1
    if len(mnemonic) > 1 and mnemonic[:-1] in _MOVE_BASES | _ALU_BASES:
        return WIDTH_SUFFIXES.get(mnemonic[-1])
    return None
