"""Parser for AT&T-syntax x86-64 assembly text.

Accepts both our own canonical rendering (``str(Instruction)``) and the
lines ``objdump -d`` prints, so the synthetic pipeline and the
real-binary frontend share one entry point.  The grammar handled:

    mnemonic
    mnemonic op
    mnemonic op,op
    mnemonic op,op,op          (imul three-operand form)

with operands being ``$imm``, ``%reg``, ``disp(base,index,scale)``,
``symbol@plt`` style labels, bare hex jump targets and
``addr <symbol+off>`` call targets.
"""

from __future__ import annotations

import re

from repro.asm.instruction import Instruction
from repro.asm.operands import Imm, Label, Mem, Operand, Reg
from repro.asm.registers import is_register


class AsmParseError(ValueError):
    """Raised when a line cannot be parsed as an instruction."""


#: Different binutils versions print `call`/`callq`, `ret`/`retq`;
#: normalize to one canonical spelling so vocabulary tokens agree across
#: the synthetic corpus, the objdump frontend and the native decoder.
_NORMALIZED_MNEMONICS = {
    "call": "callq",
    "ret": "retq",
    "jmpq": "jmp",
    "leaveq": "leave",
}

_LABEL_RE = re.compile(r"^(?:\*?)([0-9a-fA-F]+)(?:\s+<([^>]+)>)?$")
_MEM_RE = re.compile(
    r"^(-?0x[0-9a-fA-F]+|-?\d+)?"      # displacement
    r"\(\s*(%[\w().]+)?"               # base
    r"(?:\s*,\s*(%[\w().]+)"           # index
    r"(?:\s*,\s*(\d+))?)?\s*\)$"       # scale
)


def _parse_int(text: str) -> int:
    text = text.strip()
    neg = text.startswith("-")
    if neg:
        text = text[1:]
    value = int(text, 16) if text.lower().startswith("0x") else int(text, 10)
    return -value if neg else value


def _strip_reg(text: str) -> str:
    name = text.lstrip("%").strip()
    if not is_register(name):
        raise AsmParseError(f"unknown register {text!r}")
    return name


def parse_operand(text: str) -> Operand:
    """Parse a single AT&T operand string."""
    text = text.strip()
    if not text:
        raise AsmParseError("empty operand")
    if text.startswith("$"):
        return Imm(_parse_int(text[1:]))
    if text.startswith("%"):
        return Reg(_strip_reg(text))
    if "(" in text:
        match = _MEM_RE.match(text)
        if not match:
            raise AsmParseError(f"bad memory operand {text!r}")
        disp_s, base_s, index_s, scale_s = match.groups()
        return Mem(
            disp=_parse_int(disp_s) if disp_s else 0,
            base=_strip_reg(base_s) if base_s else None,
            index=_strip_reg(index_s) if index_s else None,
            scale=int(scale_s) if scale_s else 1,
        )
    match = _LABEL_RE.match(text)
    if match:
        address, symbol = match.groups()
        return Label(address=int(address, 16), symbol=symbol)
    # Bare displacement with no parens: absolute memory reference.
    try:
        return Mem(disp=_parse_int(text))
    except ValueError:
        raise AsmParseError(f"unparseable operand {text!r}") from None


def _split_operands(text: str) -> list[str]:
    """Split an operand field on commas that are outside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def parse_instruction(line: str, address: int = 0) -> Instruction:
    """Parse one instruction line (no address prefix) into the IR."""
    line = line.strip()
    if not line:
        raise AsmParseError("empty line")
    # Drop objdump annotations like "# 0x..." comments.
    line = line.split("#", 1)[0].strip()
    # Skip legacy prefixes objdump prints inline.
    for prefix in ("lock ", "rep ", "repz ", "repnz ", "bnd ", "data16 "):
        if line.startswith(prefix):
            line = line[len(prefix):].strip()
    fields = line.split(None, 1)
    mnemonic = _NORMALIZED_MNEMONICS.get(fields[0], fields[0])
    if len(fields) == 1:
        return Instruction(mnemonic=mnemonic, address=address)
    operand_text = fields[1].strip()
    if mnemonic in ("call", "callq") or mnemonic.startswith("j"):
        # The whole remainder is a single code target (may contain spaces).
        return Instruction(
            mnemonic=mnemonic,
            operands=(parse_operand(operand_text),),
            address=address,
        )
    operands = tuple(parse_operand(part) for part in _split_operands(operand_text))
    return Instruction(mnemonic=mnemonic, operands=operands, address=address)


_OBJDUMP_LINE_RE = re.compile(r"^\s*([0-9a-fA-F]+):\s*((?:[0-9a-fA-F]{2}\s)+)\s*(.*)$")


def parse_objdump_line(line: str) -> Instruction | None:
    """Parse one ``objdump -d`` body line; return None for non-instruction lines.

    Lines look like::

        40113a:\t48 89 e5             \tmov    %rsp,%rbp
    """
    match = _OBJDUMP_LINE_RE.match(line.replace("\t", " "))
    if not match:
        return None
    address_s, _opcodes, text = match.groups()
    text = text.strip()
    if not text or text.startswith("("):  # data or continuation line
        return None
    try:
        return parse_instruction(text, address=int(address_s, 16))
    except AsmParseError:
        # Unknown/exotic instruction: keep the mnemonic, drop operands, so
        # the window stays aligned with the true instruction stream.
        mnemonic = text.split()[0]
        return Instruction(mnemonic=mnemonic, address=int(address_s, 16))


def parse_listing(text: str) -> list[Instruction]:
    """Parse a block of canonical instruction lines (one per line)."""
    instructions = []
    for index, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line or line.startswith(("#", ";")):
            continue
        instructions.append(parse_instruction(line, address=index))
    return instructions
