"""Operand AST for x86-64 AT&T-syntax assembly.

Four operand shapes cover everything GCC/Clang emit for the instruction
subset CATI inspects:

* :class:`Imm` — an immediate constant (``$0x100``),
* :class:`Reg` — a register (``%rax``),
* :class:`Mem` — a memory effective address
  (``-0x300(%rbp,%r9,4)`` = disp(base, index, scale)),
* :class:`Label` — a code target for jumps/calls, optionally with a
  symbol name (``4044d0 <memchr@plt>``).

Every operand renders back to canonical AT&T text via ``str()`` so the
parser and the code generator share one textual form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.registers import register_family, register_width


def _hex(value: int) -> str:
    """Render an integer the way objdump does: ``0x`` hex, sign in front."""
    if value < 0:
        return f"-0x{-value:x}"
    return f"0x{value:x}"


@dataclass(frozen=True, slots=True)
class Imm:
    """Immediate operand, e.g. ``$0x100``."""

    value: int

    def __str__(self) -> str:
        return f"${_hex(self.value)}"


@dataclass(frozen=True, slots=True)
class Reg:
    """Register operand, e.g. ``%rax``."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"

    @property
    def family(self) -> str:
        """64-bit family name (``eax`` → ``rax``)."""
        return register_family(self.name)

    @property
    def width(self) -> int:
        """Byte width of this register view."""
        return register_width(self.name)


@dataclass(frozen=True, slots=True)
class Mem:
    """Memory effective-address operand: ``disp(base, index, scale)``.

    Any of ``base``/``index`` may be ``None``; ``scale`` defaults to 1 and
    is only rendered when an index register is present.
    """

    disp: int = 0
    base: str | None = None
    index: str | None = None
    scale: int = 1

    def __post_init__(self) -> None:
        if self.index is None and self.scale != 1:
            # Scale is meaningless without an index register; normalize so
            # rendering and parsing agree.
            object.__setattr__(self, "scale", 1)

    def __str__(self) -> str:
        parts = ""
        if self.base is not None or self.index is not None:
            inner = f"%{self.base}" if self.base is not None else ""
            if self.index is not None:
                inner += f",%{self.index},{self.scale}"
            parts = f"({inner})"
        disp = _hex(self.disp) if self.disp != 0 or not parts else ""
        return f"{disp}{parts}"

    @property
    def is_stack_slot(self) -> bool:
        """True when the address is a plain frame-pointer/stack offset.

        These are the accesses IDA (and our locator) treats as local
        variables: ``disp(%rbp)`` or ``disp(%rsp)`` with no index register.
        """
        return self.base in ("rbp", "rsp") and self.index is None

    @property
    def is_rip_relative(self) -> bool:
        """True for ``disp(%rip)`` global-data references."""
        return self.base == "rip"


@dataclass(frozen=True, slots=True)
class Label:
    """Code-address operand of a jump or call.

    ``symbol`` carries the ``<name>`` annotation objdump prints when it can
    resolve the target; stripped binaries lose most of these.
    """

    address: int
    symbol: str | None = None

    def __str__(self) -> str:
        if self.symbol is not None:
            return f"{self.address:x} <{self.symbol}>"
        return f"{self.address:x}"


Operand = Imm | Reg | Mem | Label
