"""The :class:`Instruction` IR shared by the synthetic compiler, the
objdump frontend, the VUC extractor and the generalizer.

An instruction is a mnemonic plus up to two operands (the paper's VUC
format is exactly ``mnemonic op1 op2``; longer forms are not produced by
the subset of codegen we model).  ``address`` mirrors the objdump listing
address so VUCs can be tied back to their source location.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.mnemonics import access_width, is_call, is_control_flow, is_jump, is_sse, is_x87
from repro.asm.operands import Imm, Label, Mem, Operand, Reg


@dataclass(frozen=True, slots=True)
class Instruction:
    """One disassembled x86-64 instruction in AT&T operand order."""

    mnemonic: str
    operands: tuple[Operand, ...] = ()
    address: int = 0

    def __post_init__(self) -> None:
        if len(self.operands) > 3:
            raise ValueError(f"too many operands: {self.operands!r}")

    def __str__(self) -> str:
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ",".join(str(op) for op in self.operands)

    # -- structural accessors -------------------------------------------------

    @property
    def source(self) -> Operand | None:
        """AT&T source operand (first), if present."""
        return self.operands[0] if self.operands else None

    @property
    def dest(self) -> Operand | None:
        """AT&T destination operand (last), if at least two are present."""
        return self.operands[-1] if len(self.operands) >= 2 else None

    # -- semantic predicates ---------------------------------------------------

    @property
    def is_jump(self) -> bool:
        return is_jump(self.mnemonic)

    @property
    def is_call(self) -> bool:
        return is_call(self.mnemonic)

    @property
    def is_control_flow(self) -> bool:
        return is_control_flow(self.mnemonic)

    @property
    def is_float(self) -> bool:
        """True for SSE or x87 floating-point traffic."""
        return is_sse(self.mnemonic) or is_x87(self.mnemonic)

    @property
    def width(self) -> int | None:
        """Memory access width in bytes implied by the mnemonic, if any."""
        return access_width(self.mnemonic)

    def memory_operands(self) -> tuple[Mem, ...]:
        """All :class:`Mem` operands of this instruction."""
        return tuple(op for op in self.operands if isinstance(op, Mem))

    def stack_slots(self) -> tuple[Mem, ...]:
        """Memory operands that look like local-variable stack slots."""
        return tuple(op for op in self.memory_operands() if op.is_stack_slot)

    def register_families(self) -> frozenset[str]:
        """Families of all registers the instruction names (operands only)."""
        families: set[str] = set()
        for op in self.operands:
            if isinstance(op, Reg):
                families.add(op.family)
            elif isinstance(op, Mem):
                for reg in (op.base, op.index):
                    if reg is not None and reg not in ("rip",):
                        from repro.asm.registers import register_family

                        families.add(register_family(reg))
        return frozenset(families)

    def accesses_memory(self) -> bool:
        """True when any operand is a memory effective address.

        ``lea`` is included on purpose: the paper's target instructions
        include address-taking instructions (Fig. 2's central instruction
        is a ``lea``).
        """
        return bool(self.memory_operands())


@dataclass(slots=True)
class FunctionListing:
    """A disassembled function: a name, start address and instruction list."""

    name: str
    address: int
    instructions: list[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def render(self) -> str:
        """Pretty objdump-like text for the whole function."""
        lines = [f"{self.address:016x} <{self.name}>:"]
        lines.extend(f"  {ins.address:x}:\t{ins}" for ins in self.instructions)
        return "\n".join(lines)


def make(mnemonic: str, *operands: Operand, address: int = 0) -> Instruction:
    """Convenience constructor used heavily by codegen and tests."""
    return Instruction(mnemonic=mnemonic, operands=tuple(operands), address=address)


__all__ = [
    "Instruction",
    "FunctionListing",
    "make",
    "Imm",
    "Reg",
    "Mem",
    "Label",
]
