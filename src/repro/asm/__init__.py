"""x86-64 assembly IR: registers, operands, instructions and parsing.

This subpackage is the common substrate every other component builds on:
the synthetic compiler emits :class:`~repro.asm.instruction.Instruction`
objects, the objdump frontend parses real disassembly into the same IR,
and the VUC extractor/generalizer consume it.
"""

from repro.asm.instruction import FunctionListing, Instruction, make
from repro.asm.operands import Imm, Label, Mem, Operand, Reg
from repro.asm.parser import AsmParseError, parse_instruction, parse_listing, parse_objdump_line, parse_operand
from repro.asm.registers import (
    GP_ARG_REGISTERS,
    SSE_ARG_REGISTERS,
    gp_name,
    is_register,
    register_family,
    register_info,
    register_width,
)

__all__ = [
    "FunctionListing",
    "Instruction",
    "make",
    "Imm",
    "Label",
    "Mem",
    "Operand",
    "Reg",
    "AsmParseError",
    "parse_instruction",
    "parse_listing",
    "parse_objdump_line",
    "parse_operand",
    "GP_ARG_REGISTERS",
    "SSE_ARG_REGISTERS",
    "gp_name",
    "is_register",
    "register_family",
    "register_info",
    "register_width",
]
