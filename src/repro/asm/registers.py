"""x86-64 register model.

The register file is organized into *families*: ``%rax``, ``%eax``, ``%ax``
and ``%al`` are four views of the same physical register with widths 8, 4,
2 and 1 bytes.  Type inference cares about the family (data flow: a value
written through ``%eax`` is visible through ``%rax``) and the width (the
access width is one of the strongest type signals the paper exploits:
``movb`` into a 1-byte slot suggests ``char``/``bool``, ``movsd`` through
an SSE register suggests ``double``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: General-purpose register families with their per-width names,
#: ordered widest to narrowest: (8, 4, 2, 1) bytes.
_GP_FAMILIES: dict[str, tuple[str, str, str, str]] = {
    "rax": ("rax", "eax", "ax", "al"),
    "rbx": ("rbx", "ebx", "bx", "bl"),
    "rcx": ("rcx", "ecx", "cx", "cl"),
    "rdx": ("rdx", "edx", "dx", "dl"),
    "rsi": ("rsi", "esi", "si", "sil"),
    "rdi": ("rdi", "edi", "di", "dil"),
    "rbp": ("rbp", "ebp", "bp", "bpl"),
    "rsp": ("rsp", "esp", "sp", "spl"),
    "r8": ("r8", "r8d", "r8w", "r8b"),
    "r9": ("r9", "r9d", "r9w", "r9b"),
    "r10": ("r10", "r10d", "r10w", "r10b"),
    "r11": ("r11", "r11d", "r11w", "r11b"),
    "r12": ("r12", "r12d", "r12w", "r12b"),
    "r13": ("r13", "r13d", "r13w", "r13b"),
    "r14": ("r14", "r14d", "r14w", "r14b"),
    "r15": ("r15", "r15d", "r15w", "r15b"),
}

#: Widths matching the tuple positions in ``_GP_FAMILIES``.
_GP_WIDTHS = (8, 4, 2, 1)

#: SSE registers used for float/double traffic.
_SSE_NAMES = tuple(f"xmm{i}" for i in range(16))

#: x87 registers (long double traffic on the System V ABI).
_X87_NAMES = tuple(f"st({i})" for i in range(8)) + ("st",)

#: Instruction-pointer register (rip-relative addressing).
_RIP = "rip"

#: Legacy 8-bit high registers (rarely emitted by modern compilers but
#: accepted by the parser for completeness).
_HIGH_BYTE = {"ah": "rax", "bh": "rbx", "ch": "rcx", "dh": "rdx"}


@dataclass(frozen=True, slots=True)
class RegisterInfo:
    """Static description of one architectural register name."""

    name: str
    family: str
    width: int
    kind: str  # "gp", "sse", "x87", "rip"


def _build_table() -> dict[str, RegisterInfo]:
    table: dict[str, RegisterInfo] = {}
    for family, names in _GP_FAMILIES.items():
        for name, width in zip(names, _GP_WIDTHS):
            table[name] = RegisterInfo(name=name, family=family, width=width, kind="gp")
    for name, family in _HIGH_BYTE.items():
        table[name] = RegisterInfo(name=name, family=family, width=1, kind="gp")
    for name in _SSE_NAMES:
        table[name] = RegisterInfo(name=name, family=name, width=16, kind="sse")
    for name in _X87_NAMES:
        table[name] = RegisterInfo(name=name, family="st", width=10, kind="x87")
    table[_RIP] = RegisterInfo(name=_RIP, family=_RIP, width=8, kind="rip")
    return table


_REGISTERS: dict[str, RegisterInfo] = _build_table()

#: Registers used to pass the first six integer/pointer arguments (SysV ABI).
GP_ARG_REGISTERS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

#: Registers used to pass floating-point arguments (SysV ABI).
SSE_ARG_REGISTERS = tuple(f"xmm{i}" for i in range(8))

#: Callee-saved general-purpose registers (SysV ABI).
CALLEE_SAVED = ("rbx", "rbp", "r12", "r13", "r14", "r15")

#: Caller-saved scratch registers typically used for temporaries.
SCRATCH = ("rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11")


def is_register(name: str) -> bool:
    """Return True if ``name`` (without the ``%`` sigil) is a register."""
    return name in _REGISTERS


def register_info(name: str) -> RegisterInfo:
    """Look up the :class:`RegisterInfo` for a register name.

    Raises ``KeyError`` for unknown names.
    """
    return _REGISTERS[name]


def register_family(name: str) -> str:
    """Map any register view to its 64-bit family name (``eax`` → ``rax``)."""
    return _REGISTERS[name].family


def register_width(name: str) -> int:
    """Byte width of the named register view."""
    return _REGISTERS[name].width


def gp_name(family: str, width: int) -> str:
    """Return the register name for a GP family at a given byte width.

    >>> gp_name("rax", 4)
    'eax'
    >>> gp_name("r9", 1)
    'r9b'
    """
    names = _GP_FAMILIES[family]
    return names[_GP_WIDTHS.index(width)]


def all_register_names() -> frozenset[str]:
    """The full set of recognised register names."""
    return frozenset(_REGISTERS)
