"""Evaluation: metrics (P/R/F1/accuracy/confusion), corpus statistics
(orphans, uncertain samples, clustering) and paper-style table renderers.
"""

from repro.eval.metrics import ClassMetrics, Report, accuracy, confusion_matrix, evaluate
from repro.eval.reports import render_confusion, render_stage_app_table, render_table
from repro.eval.stats import (
    ClusteringStats,
    OrphanStats,
    clustering_stats,
    find_uncertain_examples,
    orphan_stats,
)

__all__ = [
    "ClassMetrics",
    "Report",
    "accuracy",
    "confusion_matrix",
    "evaluate",
    "render_confusion",
    "render_stage_app_table",
    "render_table",
    "ClusteringStats",
    "OrphanStats",
    "clustering_stats",
    "find_uncertain_examples",
    "orphan_stats",
]
