"""ASCII table renderers that mirror the paper's table layouts."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a simple aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_confusion(
    matrix,
    classes: Sequence[object],
    title: str | None = None,
    max_label: int = 10,
) -> str:
    """Render a confusion matrix (rows = true class, columns = predicted).

    Class labels are truncated to ``max_label`` characters so the 19-type
    matrix stays readable in a terminal.
    """
    labels = [str(c)[:max_label] for c in classes]
    headers = ["true\\pred"] + labels
    rows = []
    for i, label in enumerate(labels):
        rows.append([label] + [int(v) for v in matrix[i]])
    return render_table(headers, rows, title=title)


def render_stage_app_table(
    stage_rows: dict[str, dict[str, tuple[float, float, float]]],
    apps: Sequence[str],
    title: str,
) -> str:
    """Tables III/IV layout: stages x apps with P/R/F1 sub-rows."""
    headers = ["", ""] + list(apps)
    rows: list[list[object]] = []
    for stage, per_app in stage_rows.items():
        for metric_index, metric_name in enumerate(("P", "R", "F1")):
            row: list[object] = [stage if metric_index == 0 else "", metric_name]
            for app in apps:
                values = per_app.get(app)
                row.append("-" if values is None else f"{values[metric_index]:.2f}")
            rows.append(row)
    return render_table(headers, rows, title=title)


def render_field_report(report, title: str | None = None) -> str:
    """Field-level layout-recovery table (one row per metric family).

    ``report`` is an :class:`repro.eval.metrics.FieldReport`; the table
    mirrors the benchmark's BENCH_structs.json block.
    """
    headers = ["metric", "value"]
    rows: list[list[object]] = [
        ["objects (true/pred)", f"{report.n_objects}/{report.n_predicted_objects}"],
        ["fields (true/pred)", f"{report.n_true_fields}/{report.n_predicted_fields}"],
        ["offset P/R", f"{report.offset_precision:.2f}/{report.offset_recall:.2f}"],
        ["field P/R/F1", (f"{report.field_precision:.2f}/{report.field_recall:.2f}"
                          f"/{report.field_f1:.2f}")],
        ["type accuracy", report.type_accuracy],
        ["layout exact match", report.layout_exact_match],
    ]
    return render_table(headers, rows, title=title)


def render_layouts(layouts, title: str | None = None, max_objects: int = 3) -> str:
    """Human-readable recovered layouts (``repro infer --structs`` text).

    One row per recovered field; pooled member objects beyond
    ``max_objects`` are elided with a count.
    """
    headers = ["object", "offset", "type", "width", "acc", "conf"]
    rows: list[list[object]] = []
    for layout in layouts:
        shown = ", ".join(layout.objects[:max_objects])
        if len(layout.objects) > max_objects:
            shown += f" (+{len(layout.objects) - max_objects} more)"
        for i, field in enumerate(layout.fields):
            rows.append([
                shown if i == 0 else "",
                f"+{field.offset}",
                str(field.label),
                field.width or "?",
                field.n_accesses,
                field.confidence,
            ])
    if not rows:
        rows.append(["(no struct layouts recovered)", "", "", "", "", ""])
    return render_table(headers, rows, title=title)
