"""Classification metrics: precision/recall/F1, accuracy, confusion.

Matches §VII-A's definitions.  Aggregates are *weighted* by class
support, which is what the paper reports for its per-application P/R/F1
rows (the per-stage numbers in Tables III/IV are single summary values
per application, i.e. support-weighted averages over that stage's
classes).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClassMetrics:
    """P/R/F1 and support for one class."""

    precision: float
    recall: float
    f1: float
    support: int


@dataclass(frozen=True)
class Report:
    """Full evaluation report over a label set."""

    per_class: dict[Hashable, ClassMetrics]
    accuracy: float
    weighted_precision: float
    weighted_recall: float
    weighted_f1: float
    n_samples: int


def _f1(precision: float, recall: float) -> float:
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def evaluate(y_true: Sequence[Hashable], y_pred: Sequence[Hashable]) -> Report:
    """Compute the full report; classes = union of true and predicted."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must align")
    if not y_true:
        return Report({}, 0.0, 0.0, 0.0, 0.0, 0)
    classes = sorted({*y_true, *y_pred}, key=str)
    true_counts = Counter(y_true)
    pred_counts = Counter(y_pred)
    hit_counts: Counter = Counter(t for t, p in zip(y_true, y_pred) if t == p)

    per_class: dict[Hashable, ClassMetrics] = {}
    for cls in classes:
        tp = hit_counts.get(cls, 0)
        support = true_counts.get(cls, 0)
        predicted = pred_counts.get(cls, 0)
        precision = tp / predicted if predicted else 0.0
        recall = tp / support if support else 0.0
        per_class[cls] = ClassMetrics(
            precision=precision, recall=recall, f1=_f1(precision, recall), support=support,
        )

    n = len(y_true)
    accuracy = sum(hit_counts.values()) / n
    # Weight by integer supports and divide once: each product is bounded
    # by its support and math.fsum is exactly rounded, so the aggregate
    # cannot drift above 1.0 (per-class weights of 1/n accumulate enough
    # rounding error to break the [0, 1] bound on perfect predictions).
    weighted_precision = math.fsum(
        per_class[c].precision * per_class[c].support for c in classes) / n
    weighted_recall = math.fsum(
        per_class[c].recall * per_class[c].support for c in classes) / n
    weighted_f1 = math.fsum(
        per_class[c].f1 * per_class[c].support for c in classes) / n
    return Report(
        per_class=per_class,
        accuracy=accuracy,
        weighted_precision=weighted_precision,
        weighted_recall=weighted_recall,
        weighted_f1=weighted_f1,
        n_samples=n,
    )


def confusion_matrix(
    y_true: Sequence[Hashable],
    y_pred: Sequence[Hashable],
    classes: Sequence[Hashable],
) -> np.ndarray:
    """[C, C] counts with rows = true class, columns = predicted."""
    index = {cls: i for i, cls in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        if t in index and p in index:
            matrix[index[t], index[p]] += 1
    return matrix


def accuracy(y_true: Sequence[Hashable], y_pred: Sequence[Hashable]) -> float:
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must align")
    if not y_true:
        return 0.0
    return sum(t == p for t, p in zip(y_true, y_pred)) / len(y_true)
