"""Classification metrics: precision/recall/F1, accuracy, confusion.

Matches §VII-A's definitions.  Aggregates are *weighted* by class
support, which is what the paper reports for its per-application P/R/F1
rows (the per-stage numbers in Tables III/IV are single summary values
per application, i.e. support-weighted averages over that stage's
classes).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClassMetrics:
    """P/R/F1 and support for one class."""

    precision: float
    recall: float
    f1: float
    support: int


@dataclass(frozen=True)
class Report:
    """Full evaluation report over a label set."""

    per_class: dict[Hashable, ClassMetrics]
    accuracy: float
    weighted_precision: float
    weighted_recall: float
    weighted_f1: float
    n_samples: int


def _f1(precision: float, recall: float) -> float:
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def evaluate(y_true: Sequence[Hashable], y_pred: Sequence[Hashable]) -> Report:
    """Compute the full report; classes = union of true and predicted."""
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must align")
    if not y_true:
        return Report({}, 0.0, 0.0, 0.0, 0.0, 0)
    classes = sorted({*y_true, *y_pred}, key=str)
    true_counts = Counter(y_true)
    pred_counts = Counter(y_pred)
    hit_counts: Counter = Counter(t for t, p in zip(y_true, y_pred) if t == p)

    per_class: dict[Hashable, ClassMetrics] = {}
    for cls in classes:
        tp = hit_counts.get(cls, 0)
        support = true_counts.get(cls, 0)
        predicted = pred_counts.get(cls, 0)
        precision = tp / predicted if predicted else 0.0
        recall = tp / support if support else 0.0
        per_class[cls] = ClassMetrics(
            precision=precision, recall=recall, f1=_f1(precision, recall), support=support,
        )

    n = len(y_true)
    accuracy = sum(hit_counts.values()) / n
    # Weight by integer supports and divide once: each product is bounded
    # by its support and math.fsum is exactly rounded, so the aggregate
    # cannot drift above 1.0 (per-class weights of 1/n accumulate enough
    # rounding error to break the [0, 1] bound on perfect predictions).
    weighted_precision = math.fsum(
        per_class[c].precision * per_class[c].support for c in classes) / n
    weighted_recall = math.fsum(
        per_class[c].recall * per_class[c].support for c in classes) / n
    weighted_f1 = math.fsum(
        per_class[c].f1 * per_class[c].support for c in classes) / n
    return Report(
        per_class=per_class,
        accuracy=accuracy,
        weighted_precision=weighted_precision,
        weighted_recall=weighted_recall,
        weighted_f1=weighted_f1,
        n_samples=n,
    )


def confusion_matrix(
    y_true: Sequence[Hashable],
    y_pred: Sequence[Hashable],
    classes: Sequence[Hashable],
) -> np.ndarray:
    """[C, C] counts with rows = true class, columns = predicted."""
    index = {cls: i for i, cls in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        if t in index and p in index:
            matrix[index[t], index[p]] += 1
    return matrix


def accuracy(y_true: Sequence[Hashable], y_pred: Sequence[Hashable]) -> float:
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must align")
    if not y_true:
        return 0.0
    return sum(t == p for t, p in zip(y_true, y_pred)) / len(y_true)


# -- field-level (struct layout) metrics ---------------------------------------


@dataclass(frozen=True)
class FieldReport:
    """Field-level evaluation of recovered struct layouts.

    Predicted and true layouts are ``{object id: {offset: label}}``
    mappings; a *field* is an (object, offset) pair.

    * ``offset_precision`` / ``offset_recall`` — did we find the right
      field offsets (label ignored)?
    * ``field_precision`` / ``field_recall`` / ``field_f1`` — offset
      *and* leaf label both correct.
    * ``type_accuracy`` — among predicted offsets that exist in truth,
      how often is the voted label right?
    * ``layout_exact_match`` — fraction of true objects whose predicted
      layout equals the truth exactly (same offsets, same labels).
    """

    n_objects: int          # true objects evaluated
    n_predicted_objects: int
    n_true_fields: int
    n_predicted_fields: int
    offset_precision: float
    offset_recall: float
    field_precision: float
    field_recall: float
    field_f1: float
    type_accuracy: float
    layout_exact_match: float


def evaluate_layouts(
    predicted: dict[str, dict[int, Hashable]],
    truth: dict[str, dict[int, Hashable]],
) -> FieldReport:
    """Score predicted struct layouts against ground truth.

    Only objects present in ``truth`` are scored (prediction ids with no
    truth counterpart count against precision via their fields, but a
    truth-less object cannot be validated).  An empty truth yields an
    all-zero report.
    """
    pred_pairs = {(obj, off): label
                  for obj, fields in predicted.items()
                  for off, label in fields.items()}
    true_pairs = {(obj, off): label
                  for obj, fields in truth.items()
                  for off, label in fields.items()}
    if not true_pairs:
        return FieldReport(0, len(predicted), 0, len(pred_pairs),
                           0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    offset_hits = [key for key in pred_pairs if key in true_pairs]
    field_hits = [key for key in offset_hits if pred_pairs[key] == true_pairs[key]]

    n_pred = len(pred_pairs)
    n_true = len(true_pairs)
    offset_precision = len(offset_hits) / n_pred if n_pred else 0.0
    offset_recall = len(offset_hits) / n_true
    field_precision = len(field_hits) / n_pred if n_pred else 0.0
    field_recall = len(field_hits) / n_true
    type_accuracy = len(field_hits) / len(offset_hits) if offset_hits else 0.0

    exact = sum(1 for obj, fields in truth.items()
                if predicted.get(obj) == fields)
    return FieldReport(
        n_objects=len(truth),
        n_predicted_objects=len(predicted),
        n_true_fields=n_true,
        n_predicted_fields=n_pred,
        offset_precision=offset_precision,
        offset_recall=offset_recall,
        field_precision=field_precision,
        field_recall=field_recall,
        field_f1=_f1(field_precision, field_recall),
        type_accuracy=type_accuracy,
        layout_exact_match=exact / len(truth),
    )
