"""Corpus statistics: orphan variables, uncertain samples, and the
same-type-variable clustering phenomenon (§II-B, Tables I and V).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.types import TypeName
from repro.vuc.dataset import LabeledVuc, VucDataset, target_signature
from repro.vuc.generalize import BLANK


@dataclass(frozen=True)
class OrphanStats:
    """Table I's rows for one dataset."""

    n_variables: int
    n_vucs: int
    variables_with_1_vuc: int
    uncertain_1: int
    variables_with_2_vucs: int
    uncertain_2: int

    @property
    def orphan_fraction(self) -> float:
        orphans = self.variables_with_1_vuc + self.variables_with_2_vucs
        return orphans / self.n_variables if self.n_variables else 0.0

    @property
    def uncertain_fraction_of_orphans(self) -> float:
        orphans = self.variables_with_1_vuc + self.variables_with_2_vucs
        uncertain = self.uncertain_1 + self.uncertain_2
        return uncertain / orphans if orphans else 0.0


def orphan_stats(dataset: VucDataset) -> OrphanStats:
    """Count orphan variables and uncertain samples (§II-B).

    A variable is *uncertain* when every one of its generalized target
    instructions also appears as the target instruction of some variable
    of a *different* type — i.e. the target instructions alone cannot
    decide the type (Fig. 1's same-instruction/different-type cases).
    """
    groups = dataset.by_variable()
    instruction_types: dict[str, set[TypeName]] = defaultdict(set)
    for sample in dataset:
        instruction_types[target_signature(sample)].add(sample.label)

    def is_uncertain(vucs: list[LabeledVuc]) -> bool:
        return all(
            len(instruction_types[target_signature(v)]) > 1 for v in vucs
        )

    with_1 = with_2 = uncertain_1 = uncertain_2 = 0
    for vucs in groups.values():
        count = len(vucs)
        if count > 2:
            continue
        ambiguous = is_uncertain(vucs)
        if count == 1:
            with_1 += 1
            uncertain_1 += ambiguous
        else:
            with_2 += 1
            uncertain_2 += ambiguous
    return OrphanStats(
        n_variables=len(groups),
        n_vucs=len(dataset),
        variables_with_1_vuc=with_1,
        uncertain_1=uncertain_1,
        variables_with_2_vucs=with_2,
        uncertain_2=uncertain_2,
    )


def find_uncertain_examples(dataset: VucDataset, limit: int = 4) -> list[tuple[str, TypeName, TypeName]]:
    """Mine Fig. 1-style pairs: same target instruction, different types."""
    by_signature: dict[str, set[TypeName]] = defaultdict(set)
    for sample in dataset:
        by_signature[target_signature(sample)].add(sample.label)
    out = []
    for signature, types in by_signature.items():
        if len(types) >= 2:
            ordered = sorted(types, key=str)
            out.append((signature, ordered[0], ordered[1]))
            if len(out) == limit:
                break
    return out


# -- clustering phenomenon ------------------------------------------------------


@dataclass(frozen=True)
class ClusteringStats:
    """Table V columns 7-9 for one type (or overall)."""

    cnt_same: float     # avg same-type variable-instructions per VUC
    cnt_all: float      # avg variable-instructions per VUC
    n_vucs: int

    @property
    def c_rate(self) -> float:
        return self.cnt_same / self.cnt_all if self.cnt_all else 0.0


def _is_variable_instruction(tokens: tuple[str, str, str]) -> bool:
    """Heuristic mirror of the locator: does this (generalized)
    instruction touch a frame slot?"""
    return any("(%rbp)" in token or "(%rsp)" in token or
               token.endswith("(%rbp") or "(%rsp," in token or "(%rbp," in token
               for token in tokens[1:])


def clustering_stats(
    dataset: VucDataset,
    context_labels: dict[tuple[str, int], TypeName] | None = None,
) -> dict[TypeName | None, ClusteringStats]:
    """Per-type clustering statistics over VUC windows.

    Context instructions are matched to types via their generalized
    window positions: we compare each context *variable instruction* in
    the window against the target's type using a per-dataset map from
    (variable_id, window position) — built from the dataset itself, since
    every VUC in the corpus is some variable's target instruction.
    Practically we approximate the paper's measurement by checking, for
    every context position that is itself the *target position of some
    other sample in the same function window overlap*, whether the types
    agree.  The cheap and faithful proxy used here: count context
    variable-instructions whose generalized form equals some target
    instruction of a variable with the same/different type in the same
    binary.
    """
    # Build: binary -> generalized target text -> set of types
    by_binary: dict[str, dict[str, set[TypeName]]] = defaultdict(lambda: defaultdict(set))
    for sample in dataset:
        by_binary[sample.binary][target_signature(sample)].add(sample.label)

    per_type_same: dict[TypeName | None, float] = defaultdict(float)
    per_type_all: dict[TypeName | None, float] = defaultdict(float)
    per_type_n: dict[TypeName | None, int] = defaultdict(int)

    for sample in dataset:
        center = len(sample.tokens) // 2
        lookup = by_binary[sample.binary]
        same = 0
        total = 0
        for position, tokens in enumerate(sample.tokens):
            if position == center or tokens[0] == BLANK:
                continue
            if not _is_variable_instruction(tokens):
                continue
            total += 1
            types = lookup.get(" ".join(tokens))
            if types is not None and sample.label in types:
                same += 1
        for key in (sample.label, None):
            per_type_same[key] += same
            per_type_all[key] += total
            per_type_n[key] += 1

    out: dict[TypeName | None, ClusteringStats] = {}
    for key, n in per_type_n.items():
        out[key] = ClusteringStats(
            cnt_same=per_type_same[key] / n,
            cnt_all=per_type_all[key] / n,
            n_vucs=n,
        )
    return out
