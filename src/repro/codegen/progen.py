"""Seeded random mini-C program generator.

Produces a :class:`ProgramIR` — functions with typed locals and an
*event stream* (the mini-C statement sequence) — that the lowering in
:mod:`repro.codegen.lowering` compiles to x86-64.  The generator plants
the three statistical phenomena the paper measures (DESIGN.md §5):

* **same-type clustering** — statements are scheduled in bursts that
  keep operating the current variable or a same-type sibling,
* **orphan variables** — ~35% of variables get only 1-2 accesses,
* **uncertain samples** — per-type statement menus overlap on purpose
  (e.g. ``movl $IMM, disp`` initializes int, unsigned, enum and struct
  members alike), exactly as real codegen output does.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.codegen import ctypes_model as ct
from repro.codegen.ctypes_model import ArrayType, CType, EnumType, PointerType, StructType
from repro.core.types import TypeName


class AccessKind(enum.Enum):
    """Statement shapes that touch one variable."""

    INIT = "init"                    # v = CONST
    LOAD = "load"                    # reg = v
    STORE = "store"                  # v = reg
    ARITH_IMM = "arith_imm"          # v op= CONST
    ARITH_VAR = "arith_var"          # v op= other (same-type partner)
    INCREMENT = "increment"          # v++
    COMPARE_BRANCH = "cmp_branch"    # if (v ...) goto
    CALL_ARG = "call_arg"            # f(v)
    CALL_RESULT = "call_result"      # v = f()
    DEREF_LOAD = "deref_load"        # reg = *v       (pointers)
    DEREF_STORE = "deref_store"      # *v = reg       (pointers)
    PTR_ADVANCE = "ptr_advance"      # v += stride    (pointers)
    ADDR_OF = "addr_of"              # v = &other     (pointers)
    MEMBER_STORE = "member_store"    # v.m = ...      (structs)
    MEMBER_LOAD = "member_load"      # reg = v.m      (structs)
    ARRAY_STORE = "array_store"      # v[i] = ...     (arrays)
    ARRAY_LOAD = "array_load"        # reg = v[i]     (arrays)
    BOOL_SET = "bool_set"            # v = (cond)     (bool)
    BOOL_TEST = "bool_test"          # if (v) goto    (bool)


class FillerKind(enum.Enum):
    """Instructions not tied to any located variable."""

    CALL = "call"
    CALL_NAMED = "call_named"
    JUMP = "jump"
    COND_JUMP = "cond_jump"
    REG_MOVE = "reg_move"
    REG_ARITH = "reg_arith"
    REG_CMP = "reg_cmp"
    NOP = "nop"


@dataclass
class LocalVar:
    """One local variable: a name, a C type and its generator bookkeeping.

    ``is_param`` marks a local that models an incoming function parameter
    spilled to its slot at entry (SysV argument registers); the lowering
    emits the spill, so the flag changes codegen only when set.
    """

    name: str
    ctype: CType
    index: int
    is_param: bool = False

    @property
    def label(self) -> TypeName:
        return self.ctype.leaf_label()


@dataclass(frozen=True)
class Access:
    """One statement operating ``var``; ``partner`` for two-variable ops."""

    var: LocalVar
    kind: AccessKind
    partner: LocalVar | None = None
    member: int = 0  # member index for struct access


@dataclass(frozen=True)
class Filler:
    kind: FillerKind


Event = Access | Filler


@dataclass
class FunctionIR:
    name: str
    locals: list[LocalVar]
    events: list[Event]


@dataclass
class ProgramIR:
    name: str
    functions: list[FunctionIR]


# -- statement menus -----------------------------------------------------------
# (kind, weight) menus per leaf label.  The *target-instruction* count the
# lowering produces per access is 1 for most kinds, which is what keeps the
# target-per-variable statistics (Table I) controllable.

_SCALAR_MENU: tuple[tuple[AccessKind, float], ...] = (
    (AccessKind.INIT, 2.0),
    (AccessKind.LOAD, 3.0),
    (AccessKind.STORE, 2.0),
    (AccessKind.ARITH_IMM, 2.0),
    (AccessKind.ARITH_VAR, 1.0),
    (AccessKind.INCREMENT, 1.0),
    (AccessKind.COMPARE_BRANCH, 1.5),
    (AccessKind.CALL_ARG, 1.0),
    (AccessKind.CALL_RESULT, 0.7),
)

_FLOAT_MENU: tuple[tuple[AccessKind, float], ...] = (
    (AccessKind.INIT, 2.0),
    (AccessKind.LOAD, 3.0),
    (AccessKind.STORE, 2.0),
    (AccessKind.ARITH_IMM, 2.0),
    (AccessKind.ARITH_VAR, 1.5),
    (AccessKind.COMPARE_BRANCH, 1.0),
    (AccessKind.CALL_ARG, 0.8),
    (AccessKind.CALL_RESULT, 0.5),
)

_BOOL_MENU: tuple[tuple[AccessKind, float], ...] = (
    (AccessKind.INIT, 2.5),
    (AccessKind.BOOL_SET, 2.0),
    (AccessKind.BOOL_TEST, 3.0),
    (AccessKind.LOAD, 1.0),
    (AccessKind.CALL_ARG, 0.5),
)

_POINTER_MENU: tuple[tuple[AccessKind, float], ...] = (
    (AccessKind.INIT, 1.5),
    (AccessKind.LOAD, 1.5),
    (AccessKind.STORE, 1.0),
    (AccessKind.DEREF_LOAD, 2.5),
    (AccessKind.DEREF_STORE, 1.5),
    (AccessKind.PTR_ADVANCE, 1.2),
    (AccessKind.COMPARE_BRANCH, 1.5),  # NULL checks
    (AccessKind.CALL_ARG, 1.2),
    (AccessKind.CALL_RESULT, 1.0),
    (AccessKind.ADDR_OF, 0.8),
)

_VOID_POINTER_MENU: tuple[tuple[AccessKind, float], ...] = (
    (AccessKind.INIT, 1.5),
    (AccessKind.LOAD, 2.0),
    (AccessKind.STORE, 1.5),
    (AccessKind.COMPARE_BRANCH, 1.5),
    (AccessKind.CALL_ARG, 2.0),
    (AccessKind.CALL_RESULT, 2.0),
    (AccessKind.ADDR_OF, 0.6),
)

_STRUCT_MENU: tuple[tuple[AccessKind, float], ...] = (
    (AccessKind.MEMBER_STORE, 3.0),
    (AccessKind.MEMBER_LOAD, 2.0),
)

_ARRAY_MENU: tuple[tuple[AccessKind, float], ...] = (
    (AccessKind.ARRAY_STORE, 2.0),
    (AccessKind.ARRAY_LOAD, 2.0),
)


def menu_for(var: LocalVar) -> tuple[tuple[AccessKind, float], ...]:
    """The statement menu appropriate for a variable's type."""
    ctype = var.ctype
    while isinstance(ctype, ct.TypedefType):
        ctype = ctype.target
    if isinstance(ctype, ArrayType):
        return _ARRAY_MENU
    if isinstance(ctype, StructType):
        return _STRUCT_MENU
    if isinstance(ctype, PointerType):
        return _VOID_POINTER_MENU if ctype.pointee is None else _POINTER_MENU
    if isinstance(ctype, EnumType):
        return _SCALAR_MENU
    label = var.label
    if label is TypeName.BOOL:
        return _BOOL_MENU
    if label in (TypeName.FLOAT, TypeName.DOUBLE, TypeName.LONG_DOUBLE):
        return _FLOAT_MENU
    return _SCALAR_MENU


# -- type sampling -------------------------------------------------------------

#: Default leaf-label frequencies, shaped after Table V's supports
#: (struct* and int dominate; float and exotic ints are rare).
DEFAULT_TYPE_WEIGHTS: dict[TypeName, float] = {
    TypeName.BOOL: 1.3,
    TypeName.STRUCT: 5.5,
    TypeName.CHAR: 2.4,
    TypeName.UNSIGNED_CHAR: 0.5,
    TypeName.FLOAT: 0.15,
    TypeName.DOUBLE: 3.0,
    TypeName.LONG_DOUBLE: 0.25,
    TypeName.ENUM: 2.2,
    TypeName.INT: 23.0,
    TypeName.SHORT_INT: 0.12,
    TypeName.LONG_INT: 4.3,
    TypeName.LONG_LONG_INT: 0.10,
    TypeName.UNSIGNED_INT: 1.8,
    TypeName.SHORT_UNSIGNED_INT: 0.15,
    TypeName.LONG_UNSIGNED_INT: 5.2,
    TypeName.LONG_LONG_UNSIGNED_INT: 0.10,
    TypeName.VOID_POINTER: 2.6,
    TypeName.STRUCT_POINTER: 22.0,
    TypeName.ARITH_POINTER: 7.0,
}


@dataclass
class GeneratorConfig:
    """Knobs of the program generator."""

    functions_per_binary: tuple[int, int] = (6, 14)
    locals_per_function: tuple[int, int] = (3, 10)
    orphan_fraction: float = 0.35       # Table I: ~35% of variables
    orphan_accesses: tuple[int, int] = (1, 2)
    normal_accesses: tuple[int, int] = (3, 9)
    cluster_stay_prob: float = 0.42     # keep operating the same variable
    cluster_same_type_prob: float = 0.30  # switch to a same-type sibling
    filler_prob: float = 0.30           # chance of filler after each access
    type_weights: dict[TypeName, float] = field(default_factory=lambda: dict(DEFAULT_TYPE_WEIGHTS))
    array_fraction: float = 0.18        # of char/uchar/struct vars become arrays
    typedef_fraction: float = 0.25      # of size-matched scalars via typedefs
    #: Fraction of struct-pointer locals promoted to spilled register
    #: parameters (pointer-to-struct arguments).  Default 0.0 keeps the
    #: generator's rng stream untouched so existing seeded corpora are
    #: byte-identical; the struct-recovery corpus turns it on.
    struct_param_fraction: float = 0.0


def _sample_ctype(rng: random.Random, label: TypeName, config: GeneratorConfig,
                  struct_zoo: tuple[StructType, ...]) -> CType:
    """Materialize a concrete CType for a sampled leaf label."""
    if label is TypeName.STRUCT:
        base: CType = rng.choice(struct_zoo)
        if rng.random() < config.array_fraction:
            return ArrayType(base, rng.choice((2, 4, 8)))
        return base
    if label is TypeName.STRUCT_POINTER:
        return PointerType(rng.choice(struct_zoo))
    if label is TypeName.VOID_POINTER:
        return PointerType(None)
    if label is TypeName.ARITH_POINTER:
        pointee = rng.choice((ct.CHAR, ct.INT, ct.UCHAR, ct.DOUBLE, ct.LONG, ct.UINT))
        return PointerType(pointee)
    if label is TypeName.ENUM:
        return EnumType(rng.choice(("state_t", "mode_t", "color_t", "token_kind")))
    base = ct.representative(label)
    if label in (TypeName.CHAR, TypeName.UNSIGNED_CHAR) and rng.random() < config.array_fraction:
        return ArrayType(base, rng.choice((16, 32, 64, 128, 256)))
    if rng.random() < config.typedef_fraction:
        if label is TypeName.LONG_UNSIGNED_INT:
            return ct.SIZE_T
        if label is TypeName.LONG_INT:
            return rng.choice((ct.SSIZE_T, ct.INT64_T))
        if label is TypeName.UNSIGNED_INT:
            return ct.UINT32_T
        if label is TypeName.UNSIGNED_CHAR:
            return rng.choice((ct.UINT8_T, ct.BYTE_T))
    return base


def _weighted_choice(rng: random.Random, menu: tuple[tuple[AccessKind, float], ...]) -> AccessKind:
    total = sum(weight for _, weight in menu)
    roll = rng.random() * total
    for kind, weight in menu:
        roll -= weight
        if roll <= 0:
            return kind
    return menu[-1][0]


def _sample_label(rng: random.Random, weights: dict[TypeName, float]) -> TypeName:
    labels = list(weights)
    cum = []
    total = 0.0
    for label in labels:
        total += weights[label]
        cum.append(total)
    roll = rng.random() * total
    for label, bound in zip(labels, cum):
        if roll <= bound:
            return label
    return labels[-1]


_FILLER_WEIGHTS: tuple[tuple[FillerKind, float], ...] = (
    (FillerKind.REG_MOVE, 3.0),
    (FillerKind.REG_ARITH, 2.0),
    (FillerKind.REG_CMP, 1.5),
    (FillerKind.COND_JUMP, 1.5),
    (FillerKind.JUMP, 0.8),
    (FillerKind.CALL, 1.0),
    (FillerKind.CALL_NAMED, 1.0),
    (FillerKind.NOP, 0.3),
)


def _sample_filler(rng: random.Random) -> Filler:
    total = sum(weight for _, weight in _FILLER_WEIGHTS)
    roll = rng.random() * total
    for kind, weight in _FILLER_WEIGHTS:
        roll -= weight
        if roll <= 0:
            return Filler(kind)
    return Filler(FillerKind.NOP)


def generate_function(rng: random.Random, name: str, config: GeneratorConfig) -> FunctionIR:
    """Generate one function: locals, access budgets and a clustered schedule."""
    struct_zoo = ct.make_struct_zoo()
    n_locals = rng.randint(*config.locals_per_function)
    locals_: list[LocalVar] = []
    for index in range(n_locals):
        label = _sample_label(rng, config.type_weights)
        ctype = _sample_ctype(rng, label, config, struct_zoo)
        locals_.append(LocalVar(name=f"v{index}", ctype=ctype, index=index))

    if config.struct_param_fraction > 0.0:
        # Promote some struct pointers to spilled parameters.  Guarded so
        # the default config consumes no rng here (seeded-corpus stability).
        for var in locals_:
            if (var.label is TypeName.STRUCT_POINTER
                    and rng.random() < config.struct_param_fraction):
                var.is_param = True

    budgets: dict[int, int] = {}
    for var in locals_:
        if rng.random() < config.orphan_fraction:
            budgets[var.index] = rng.randint(*config.orphan_accesses)
        else:
            budgets[var.index] = rng.randint(*config.normal_accesses)

    events: list[Event] = []
    remaining = [var for var in locals_ if budgets[var.index] > 0]
    current: LocalVar | None = None
    while remaining:
        if current is None or budgets[current.index] <= 0 or current not in remaining:
            current = rng.choice(remaining)
        access_kind = _weighted_choice(rng, menu_for(current))
        partner = None
        member = 0
        if access_kind is AccessKind.ARITH_VAR:
            same_type = [v for v in locals_ if v.label is current.label and v is not current]
            partner = rng.choice(same_type) if same_type else None
            if partner is None:
                access_kind = AccessKind.ARITH_IMM
        elif access_kind is AccessKind.ADDR_OF:
            others = [v for v in locals_ if v is not current and not isinstance(v.ctype, PointerType)]
            partner = rng.choice(others) if others else None
            if partner is None:
                access_kind = AccessKind.INIT
        elif access_kind in (AccessKind.MEMBER_STORE, AccessKind.MEMBER_LOAD):
            struct = current.ctype
            while isinstance(struct, (ct.TypedefType, ArrayType)):
                struct = struct.target if isinstance(struct, ct.TypedefType) else struct.element
            member = rng.randrange(len(struct.members)) if isinstance(struct, StructType) else 0
        events.append(Access(var=current, kind=access_kind, partner=partner, member=member))
        budgets[current.index] -= 1
        if budgets[current.index] <= 0:
            remaining = [v for v in remaining if v is not current]

        if rng.random() < config.filler_prob:
            events.append(_sample_filler(rng))

        # Clustered scheduling: stay / same-type sibling / anyone.
        roll = rng.random()
        if roll < config.cluster_stay_prob:
            pass  # keep current
        elif roll < config.cluster_stay_prob + config.cluster_same_type_prob:
            siblings = [v for v in remaining if v.label is current.label]
            current = rng.choice(siblings) if siblings else None
        else:
            current = None
    return FunctionIR(name=name, locals=locals_, events=events)


def generate_program(seed: int, name: str, config: GeneratorConfig | None = None) -> ProgramIR:
    """Generate a whole binary's worth of functions, deterministically."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    n_functions = rng.randint(*config.functions_per_binary)
    functions = [
        generate_function(rng, f"{name}_fn{i}", config) for i in range(n_functions)
    ]
    return ProgramIR(name=name, functions=functions)
