"""Compile mini-C IR (:mod:`repro.codegen.progen`) to x86-64 assembly.

This is a deliberately faithful model of how GCC and Clang lower locals
at the instruction level:

* every local lives in a stack slot (rbp- or rsp-relative, depending on
  compiler style / optimization level),
* access width follows the type (``movb`` for char/bool, ``movl`` for
  int/enum/unsigned, ``movq`` for long/pointers, ``movss``/``movsd`` for
  float/double, x87 ``fldt``/``fstpt`` for long double),
* sign-ness shows up in extension moves (``movsbl`` vs ``movzbl``) and
  branch conditions (``jle`` vs ``jbe``),
* pointers round-trip through a register and are then dereferenced,
* struct members are stored at interior offsets of the struct's slot,
* the same generalized instruction is emitted for many types
  (``movl $IMM, disp(%rbp)`` for int, unsigned, enum, struct members),
  which is precisely the paper's *uncertain samples* problem.

The lowering also records, per emitted instruction, which variable it is
a *target instruction* of — the generator-side ground truth used to
validate the locator (the evaluation pipeline itself re-derives labels
from the DWARF blob like the paper does).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.asm.instruction import FunctionListing, Instruction, make
from repro.asm.operands import Imm, Label, Mem, Reg
from repro.asm.registers import gp_name
from repro.codegen import ctypes_model as ct
from repro.codegen.ctypes_model import ArrayType, CType, EnumType, PointerType, StructType, TypedefType
from repro.codegen.progen import Access, AccessKind, Filler, FillerKind, FunctionIR, LocalVar
from repro.core.types import TypeName


@dataclass(frozen=True)
class CompilerStyle:
    """Codegen conventions that differ between compilers (§VIII)."""

    name: str
    frame_base: str                      # "rbp" or "rsp"
    scratch_rotation: tuple[str, ...]    # GP families, rotation order
    sse_rotation: tuple[str, ...]
    zero_idiom: str                      # "mov" or "xor"
    uses_endbr: bool
    epilogue: str                        # "leave" or "add_pop"
    redundant_load_prob: float           # O0-style reload after store
    #: Probability that an access is lowered to a *type-blind* pattern
    #: (word-sized copy, address-taking lea, memset head) instead of the
    #: type-directed one.  Real codegen does this constantly — memcpy
    #: moves char buffers in 8-byte words, &x erases x's type at the
    #: instruction level — and it is what makes trace-only inference
    #: (DEBIN/TypeMiner-style) fall behind context (§II-B).
    trace_noise_prob: float = 0.14


def gcc_style(opt_level: int) -> CompilerStyle:
    """GCC conventions: rbp frame at -O0/-O1, rax-first scratch order."""
    return CompilerStyle(
        name="gcc",
        frame_base="rbp" if opt_level <= 1 else "rsp",
        scratch_rotation=("rax", "rdx", "rcx", "rsi", "rdi", "r8"),
        sse_rotation=("xmm0", "xmm1", "xmm2"),
        zero_idiom="mov",
        uses_endbr=True,
        epilogue="leave" if opt_level <= 1 else "add_pop",
        redundant_load_prob=(0.5, 0.25, 0.08, 0.02)[min(opt_level, 3)],
        trace_noise_prob=(0.10, 0.13, 0.17, 0.20)[min(opt_level, 3)],
    )


def clang_style(opt_level: int) -> CompilerStyle:
    """Clang conventions: rsp-relative slots, rcx-first scratch order."""
    return CompilerStyle(
        name="clang",
        frame_base="rsp",
        scratch_rotation=("rcx", "rsi", "r8", "r9", "rdi", "r10", "rax"),
        sse_rotation=("xmm1", "xmm2", "xmm3"),
        zero_idiom="xor",
        uses_endbr=False,
        epilogue="add_pop",
        redundant_load_prob=(0.4, 0.2, 0.05, 0.0)[min(opt_level, 3)],
        trace_noise_prob=(0.10, 0.13, 0.17, 0.20)[min(opt_level, 3)],
    )


@dataclass
class SlotInfo:
    """Frame-slot assignment of one local."""

    var: LocalVar
    offset: int  # literal displacement used in instructions
    size: int


@dataclass(frozen=True, slots=True)
class MemberTruth:
    """Ground truth for one lowered member access.

    Records which struct field an emitted instruction touches: the byte
    offset of the field inside its base object (the struct local, or the
    pointee of a struct pointer) and the field type's leaf label.  This
    is what the posterior struct-recovery stage is evaluated against.
    """

    instruction_index: int
    var_index: int
    member_offset: int
    label: TypeName


@dataclass
class LoweredFunction:
    """A compiled function plus its ground-truth bookkeeping."""

    listing: FunctionListing
    frame_base: str
    slots: dict[int, SlotInfo]                  # var index -> slot
    truth: list[tuple[int, int]] = field(default_factory=list)  # (ins idx, var idx)
    member_truth: list[MemberTruth] = field(default_factory=list)

    def truth_by_instruction(self) -> dict[int, int]:
        return dict(self.truth)

    def member_truth_by_instruction(self) -> dict[int, MemberTruth]:
        return {record.instruction_index: record for record in self.member_truth}


def _strip_typedefs(ctype: CType) -> CType:
    while isinstance(ctype, TypedefType):
        ctype = ctype.target
    return ctype


def _scalar_width(ctype: CType) -> int:
    """Access width in bytes for a scalar/pointer slot."""
    ctype = _strip_typedefs(ctype)
    if isinstance(ctype, PointerType):
        return 8
    if isinstance(ctype, EnumType):
        return 4
    if isinstance(ctype, ct.BaseType):
        return min(ctype.byte_size, 8) if not ctype.is_float else ctype.byte_size
    return 8


_WIDTH_SUFFIX = {1: "b", 2: "w", 4: "l", 8: "q"}
_EXT_LOAD = {(1, True): "movsbl", (1, False): "movzbl", (2, True): "movswl", (2, False): "movzwl"}

#: Conditional jumps: signed vs unsigned comparisons read differently.
_SIGNED_JCC = ("jle", "jge", "jl", "jg", "jne", "je")
_UNSIGNED_JCC = ("jbe", "jae", "jb", "ja", "jne", "je")

_LIBC_NAMES = (
    "memchr", "memcpy", "memset", "strlen", "strcmp", "strcpy", "malloc",
    "free", "printf", "fprintf", "read", "write", "open", "close", "calloc",
    "realloc", "strchr", "strncmp", "snprintf", "qsort", "getenv", "exit",
)


class FunctionLowerer:
    """Stateful per-function emitter."""

    def __init__(self, func: FunctionIR, style: CompilerStyle,
                 rng: random.Random, base_address: int) -> None:
        self.func = func
        self.style = style
        self.rng = rng
        self.address = base_address
        self.instructions: list[Instruction] = []
        self.truth: list[tuple[int, int]] = []
        self.member_truth: list[MemberTruth] = []
        self.slots = self._layout_frame()
        self._gp_cursor = 0
        self._sse_cursor = 0
        self._member_disp = 0
        self._member_label = TypeName.INT

    # -- frame layout ----------------------------------------------------------

    def _layout_frame(self) -> dict[int, SlotInfo]:
        slots: dict[int, SlotInfo] = {}
        if self.style.frame_base == "rbp":
            cursor = 0
            for var in self.func.locals:
                size = var.ctype.size
                align = var.ctype.align
                cursor = -((-cursor + size + align - 1) // align * align)
                slots[var.index] = SlotInfo(var=var, offset=cursor, size=size)
        else:
            cursor = 8  # leave room for spilled return address area
            for var in self.func.locals:
                size = var.ctype.size
                align = var.ctype.align
                cursor = (cursor + align - 1) // align * align
                slots[var.index] = SlotInfo(var=var, offset=cursor, size=size)
                cursor += size
        return slots

    @property
    def frame_size(self) -> int:
        if not self.slots:
            return 16
        if self.style.frame_base == "rbp":
            low = min(slot.offset for slot in self.slots.values())
            return (-low + 15) // 16 * 16
        high = max(slot.offset + slot.size for slot in self.slots.values())
        return (high + 15) // 16 * 16

    # -- emission helpers --------------------------------------------------------

    def _emit(self, instruction: Instruction, target_var: LocalVar | None = None,
              member: tuple[int, TypeName] | None = None) -> None:
        instruction = Instruction(
            mnemonic=instruction.mnemonic,
            operands=instruction.operands,
            address=self.address,
        )
        self.address += self.rng.randint(2, 7)  # realistic variable encoding size
        if target_var is not None:
            index = len(self.instructions)
            self.truth.append((index, target_var.index))
            if member is not None:
                self.member_truth.append(MemberTruth(
                    instruction_index=index, var_index=target_var.index,
                    member_offset=member[0], label=member[1],
                ))
        self.instructions.append(instruction)

    def _slot(self, var: LocalVar, extra: int = 0) -> Mem:
        info = self.slots[var.index]
        return Mem(disp=info.offset + extra, base=self.style.frame_base)

    def _gp(self, width: int) -> str:
        family = self.style.scratch_rotation[self._gp_cursor % len(self.style.scratch_rotation)]
        self._gp_cursor += 1
        return gp_name(family, width)

    def _sse(self) -> str:
        name = self.style.sse_rotation[self._sse_cursor % len(self.style.sse_rotation)]
        self._sse_cursor += 1
        return name

    def _imm(self, small: bool = False) -> Imm:
        if small:
            return Imm(self.rng.choice((0, 1, 2, 4, 8, 16, 0x1F, 0x40)))
        return Imm(self.rng.choice((0, 1, 2, 8, 0x10, 0x20, 0x40, 0x64, 0x100, 0x400, 0xFF)))

    def _code_addr(self) -> Label:
        return Label(address=self.rng.randrange(0x401000, 0x47F000))

    def _func_addr(self, named: bool) -> Label:
        address = self.rng.randrange(0x401000, 0x47F000)
        if named:
            return Label(address=address, symbol=f"{self.rng.choice(_LIBC_NAMES)}@plt")
        return Label(address=address)

    # -- type-directed primitive sequences ---------------------------------------

    def _load_to_reg(self, var: LocalVar, member: int = 0) -> str:
        """Emit the canonical 'load slot into a register' and return the reg."""
        ctype = _strip_typedefs(var.ctype)
        label = var.label
        if label is TypeName.FLOAT:
            reg = self._sse()
            self._emit(make("movss", self._slot(var), Reg(reg)), var)
            return reg
        if label is TypeName.DOUBLE:
            reg = self._sse()
            self._emit(make("movsd", self._slot(var), Reg(reg)), var)
            return reg
        if label is TypeName.LONG_DOUBLE:
            self._emit(make("fldt", self._slot(var)), var)
            return "st"
        width = _scalar_width(ctype)
        if width < 4:
            signed = isinstance(ctype, ct.BaseType) and ctype.is_signed
            reg = self._gp(4)
            self._emit(make(_EXT_LOAD[(width, signed)], self._slot(var), Reg(reg)), var)
            return reg
        reg = self._gp(width)
        mnemonic = "mov" + _WIDTH_SUFFIX[width] if width == 4 else "mov"
        self._emit(make(mnemonic, self._slot(var), Reg(reg)), var)
        return reg

    def _store_from_reg(self, var: LocalVar, reg: str | None = None) -> None:
        label = var.label
        if label is TypeName.FLOAT:
            reg = reg or self._sse()
            self._emit(make("movss", Reg(reg), self._slot(var)), var)
            return
        if label is TypeName.DOUBLE:
            reg = reg or self._sse()
            self._emit(make("movsd", Reg(reg), self._slot(var)), var)
            return
        if label is TypeName.LONG_DOUBLE:
            self._emit(make("fstpt", self._slot(var)), var)
            return
        width = _scalar_width(var.ctype)
        if reg is None:
            family_reg = self._gp(width)
        else:
            from repro.asm.registers import register_family

            family_reg = gp_name(register_family(reg), width)
        mnemonic = "mov" + _WIDTH_SUFFIX[width] if width < 8 else "mov"
        self._emit(make(mnemonic, Reg(family_reg), self._slot(var)), var)

    def _init_imm(self, var: LocalVar) -> None:
        label = var.label
        if label is TypeName.BOOL:
            self._emit(make("movb", Imm(self.rng.choice((0, 1))), self._slot(var)), var)
            return
        if label is TypeName.FLOAT:
            reg = self._sse()
            self._emit(make("movss", Mem(disp=self.rng.randrange(0x1000, 0x8000), base="rip"), Reg(reg)))
            self._emit(make("movss", Reg(reg), self._slot(var)), var)
            return
        if label is TypeName.DOUBLE:
            reg = self._sse()
            self._emit(make("movsd", Mem(disp=self.rng.randrange(0x1000, 0x8000), base="rip"), Reg(reg)))
            self._emit(make("movsd", Reg(reg), self._slot(var)), var)
            return
        if label is TypeName.LONG_DOUBLE:
            self._emit(make("fldt", Mem(disp=self.rng.randrange(0x1000, 0x8000), base="rip")))
            self._emit(make("fstpt", self._slot(var)), var)
            return
        width = _scalar_width(var.ctype)
        mnemonic = "mov" + _WIDTH_SUFFIX[width]
        self._emit(make(mnemonic, self._imm(), self._slot(var)), var)

    # -- access lowering ---------------------------------------------------------

    def _lower_generic_access(self, access: Access) -> None:
        """Type-blind lowering: the patterns real codegen emits for *any*
        variable regardless of type.

        * ``lea slot, %reg`` — address-of (scanf/memset/memcpy argument),
        * word-sized copies at interior offsets (memcpy chunks) for
          aggregates and 8-byte scalars,
        * ``movq $0, slot`` — zeroing head of a memset,
        * width-matched plain moves that erase signedness for narrow
          scalars (``movb`` instead of ``movsbl``).
        """
        var = access.var
        size = self.slots[var.index].size
        roll = self.rng.random()
        if roll < 0.35:
            self._emit(make("lea", self._slot(var), Reg(self._gp(8))), var)
            return
        if size >= 8:
            if roll < 0.55:
                self._emit(make("movq", Imm(0), self._slot(var)), var)
                return
            extra = (self.rng.randrange(max(size // 8, 1))) * 8
            if roll < 0.78:
                self._emit(make("mov", self._slot(var, extra=extra), Reg(self._gp(8))), var)
            else:
                self._emit(make("mov", Reg(self._gp(8)), self._slot(var, extra=extra)), var)
            return
        width = min(size, 4) if size != 3 else 1
        if width not in _WIDTH_SUFFIX:
            width = 1
        mnemonic = "mov" + _WIDTH_SUFFIX[width]
        reg = gp_name(self.style.scratch_rotation[self._gp_cursor % len(self.style.scratch_rotation)], width)
        self._gp_cursor += 1
        if roll < 0.7:
            self._emit(make(mnemonic, Reg(reg), self._slot(var)), var)
        else:
            self._emit(make(mnemonic, self._slot(var), Reg(reg)), var)

    def lower_access(self, access: Access) -> None:
        if self.rng.random() < self.style.trace_noise_prob:
            self._lower_generic_access(access)
            return
        handler = {
            AccessKind.INIT: self._do_init,
            AccessKind.LOAD: self._do_load,
            AccessKind.STORE: self._do_store,
            AccessKind.ARITH_IMM: self._do_arith_imm,
            AccessKind.ARITH_VAR: self._do_arith_var,
            AccessKind.INCREMENT: self._do_increment,
            AccessKind.COMPARE_BRANCH: self._do_compare_branch,
            AccessKind.CALL_ARG: self._do_call_arg,
            AccessKind.CALL_RESULT: self._do_call_result,
            AccessKind.DEREF_LOAD: self._do_deref_load,
            AccessKind.DEREF_STORE: self._do_deref_store,
            AccessKind.PTR_ADVANCE: self._do_ptr_advance,
            AccessKind.ADDR_OF: self._do_addr_of,
            AccessKind.MEMBER_STORE: self._do_member_store,
            AccessKind.MEMBER_LOAD: self._do_member_load,
            AccessKind.ARRAY_STORE: self._do_array_store,
            AccessKind.ARRAY_LOAD: self._do_array_load,
            AccessKind.BOOL_SET: self._do_bool_set,
            AccessKind.BOOL_TEST: self._do_bool_test,
        }[access.kind]
        handler(access)

    def _do_init(self, access: Access) -> None:
        var = access.var
        ctype = _strip_typedefs(var.ctype)
        if isinstance(ctype, PointerType):
            if self.rng.random() < 0.6:
                self._emit(make("movq", Imm(0), self._slot(var)), var)  # p = NULL
            else:
                reg = self._gp(8)
                self._emit(make("lea", Mem(disp=self.rng.randrange(0x1000, 0x8000), base="rip"), Reg(reg)))
                self._emit(make("mov", Reg(reg), self._slot(var)), var)
            return
        self._init_imm(var)

    def _do_load(self, access: Access) -> None:
        self._load_to_reg(access.var)

    def _do_store(self, access: Access) -> None:
        self._store_from_reg(access.var)

    def _do_arith_imm(self, access: Access) -> None:
        var = access.var
        label = var.label
        if label in (TypeName.FLOAT, TypeName.DOUBLE):
            suffix = "ss" if label is TypeName.FLOAT else "sd"
            reg = self._sse()
            self._emit(make(f"mov{suffix}", self._slot(var), Reg(reg)), var)
            self._emit(make(
                self.rng.choice((f"add{suffix}", f"mul{suffix}", f"sub{suffix}")),
                Mem(disp=self.rng.randrange(0x1000, 0x8000), base="rip"), Reg(reg)))
            self._emit(make(f"mov{suffix}", Reg(reg), self._slot(var)), var)
            return
        if label is TypeName.LONG_DOUBLE:
            self._emit(make("fldt", self._slot(var)), var)
            self._emit(make("fldt", Mem(disp=self.rng.randrange(0x1000, 0x8000), base="rip")))
            self._emit(make(self.rng.choice(("faddp", "fmulp", "fsubrp"))))
            self._emit(make("fstpt", self._slot(var)), var)
            return
        ctype = _strip_typedefs(var.ctype)
        width = _scalar_width(ctype)
        if width < 4:
            # Byte/word RMW goes through a register at every opt level.
            reg = self._load_to_reg(var)
            from repro.asm.registers import register_family

            narrow = gp_name(register_family(reg), width)
            self._emit(make(self.rng.choice(("add", "sub", "and", "or")), self._imm(small=True), Reg(reg)))
            self._emit(make("mov" + _WIDTH_SUFFIX[width], Reg(narrow), self._slot(var)), var)
            return
        unsigned = isinstance(ctype, ct.BaseType) and not ctype.is_signed and not ctype.is_float
        if unsigned:
            ops = ("add", "and", "or", "shr", "xor", "sub")
        else:
            ops = ("add", "sub", "imul", "and", "add", "sub")
        op = self.rng.choice(ops) + _WIDTH_SUFFIX[width]
        if op.startswith("imul"):
            # imul has no memory-destination form: load, multiply, store.
            reg = self._load_to_reg(var)
            self._emit(make("imul", self._imm(small=True), Reg(reg), Reg(reg)))
            self._store_from_reg(var, reg)
            return
        self._emit(make(op, self._imm(small=True), self._slot(var)), var)

    def _do_arith_var(self, access: Access) -> None:
        var, partner = access.var, access.partner
        assert partner is not None
        label = var.label
        if label in (TypeName.FLOAT, TypeName.DOUBLE):
            suffix = "ss" if label is TypeName.FLOAT else "sd"
            reg = self._sse()
            self._emit(make(f"mov{suffix}", self._slot(partner), Reg(reg)), partner)
            self._emit(make(self.rng.choice((f"add{suffix}", f"mul{suffix}")), self._slot(var), Reg(reg)), var)
            self._emit(make(f"mov{suffix}", Reg(reg), self._slot(var)), var)
            return
        if label is TypeName.LONG_DOUBLE:
            self._emit(make("fldt", self._slot(partner)), partner)
            self._emit(make("fldt", self._slot(var)), var)
            self._emit(make("faddp"))
            self._emit(make("fstpt", self._slot(var)), var)
            return
        reg = self._load_to_reg(partner)
        width = _scalar_width(var.ctype)
        from repro.asm.registers import register_family

        sized = gp_name(register_family(reg), width) if width >= 4 else reg
        op = self.rng.choice(("add", "sub", "and", "or", "xor"))
        if width >= 4:
            self._emit(make(op + _WIDTH_SUFFIX[width] if width == 4 else op,
                            Reg(sized), self._slot(var)), var)
        else:
            narrow = gp_name(register_family(reg), width)
            self._emit(make(op + _WIDTH_SUFFIX[width], Reg(narrow), self._slot(var)), var)

    def _do_increment(self, access: Access) -> None:
        var = access.var
        label = var.label
        if label in (TypeName.FLOAT, TypeName.DOUBLE, TypeName.LONG_DOUBLE):
            self._do_arith_imm(access)
            return
        width = _scalar_width(var.ctype)
        if width < 4:
            self._do_arith_imm(access)
            return
        self._emit(make("add" + _WIDTH_SUFFIX[width], Imm(1), self._slot(var)), var)

    def _do_compare_branch(self, access: Access) -> None:
        var = access.var
        ctype = _strip_typedefs(var.ctype)
        label = var.label
        if label is TypeName.BOOL:
            self._emit(make("cmpb", Imm(0), self._slot(var)), var)
            self._emit(make(self.rng.choice(("je", "jne")), self._code_addr()))
            return
        if label in (TypeName.FLOAT, TypeName.DOUBLE):
            suffix = "ss" if label is TypeName.FLOAT else "sd"
            reg = self._sse()
            self._emit(make(f"mov{suffix}", self._slot(var), Reg(reg)), var)
            self._emit(make(f"ucomi{suffix}", Mem(disp=self.rng.randrange(0x1000, 0x8000), base="rip"), Reg(reg)))
            self._emit(make(self.rng.choice(("ja", "jbe", "jp")), self._code_addr()))
            return
        if label is TypeName.LONG_DOUBLE:
            self._emit(make("fldt", self._slot(var)), var)
            self._emit(make("fucomip"))
            self._emit(make(self.rng.choice(("ja", "jbe")), self._code_addr()))
            return
        if isinstance(ctype, PointerType):
            self._emit(make("cmpq", Imm(0), self._slot(var)), var)
            self._emit(make(self.rng.choice(("je", "jne")), self._code_addr()))
            return
        width = _scalar_width(ctype)
        if width < 4:
            reg = self._load_to_reg(var)
            self._emit(make("cmp", self._imm(small=True), Reg(reg)))
        else:
            self._emit(make("cmp" + _WIDTH_SUFFIX[width], self._imm(small=True), self._slot(var)), var)
        unsigned = isinstance(ctype, ct.BaseType) and not ctype.is_signed
        jcc = self.rng.choice(_UNSIGNED_JCC if unsigned else _SIGNED_JCC)
        self._emit(make(jcc, self._code_addr()))

    _ARG_GP = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

    def _do_call_arg(self, access: Access) -> None:
        var = access.var
        label = var.label
        slot_pos = self.rng.randrange(3)
        ctype = _strip_typedefs(var.ctype)
        if isinstance(ctype, ArrayType) or isinstance(ctype, StructType):
            # Arrays/structs are passed by address: lea slot, %argreg.
            self._emit(make("lea", self._slot(var), Reg(self._ARG_GP[slot_pos])), var)
        elif label in (TypeName.FLOAT, TypeName.DOUBLE):
            suffix = "ss" if label is TypeName.FLOAT else "sd"
            self._emit(make(f"mov{suffix}", self._slot(var), Reg(f"xmm{slot_pos}")), var)
        elif label is TypeName.LONG_DOUBLE:
            self._emit(make("fldt", self._slot(var)), var)
        else:
            width = _scalar_width(ctype)
            if width < 4:
                signed = isinstance(ctype, ct.BaseType) and ctype.is_signed
                reg = gp_name(self._ARG_GP[slot_pos], 4)
                self._emit(make(_EXT_LOAD[(width, signed)], self._slot(var), Reg(reg)), var)
            else:
                reg = gp_name(self._ARG_GP[slot_pos], width)
                mnemonic = "movl" if width == 4 else "mov"
                self._emit(make(mnemonic, self._slot(var), Reg(reg)), var)
        self._emit(make("callq", self._func_addr(named=self.rng.random() < 0.6)))

    def _do_call_result(self, access: Access) -> None:
        var = access.var
        self._emit(make("callq", self._func_addr(named=self.rng.random() < 0.6)))
        label = var.label
        if label in (TypeName.FLOAT, TypeName.DOUBLE):
            suffix = "ss" if label is TypeName.FLOAT else "sd"
            self._emit(make(f"mov{suffix}", Reg("xmm0"), self._slot(var)), var)
            return
        if label is TypeName.LONG_DOUBLE:
            self._emit(make("fstpt", self._slot(var)), var)
            return
        width = _scalar_width(var.ctype)
        ret = gp_name("rax", max(width, 1))
        mnemonic = "mov" + _WIDTH_SUFFIX[width] if width < 8 else "mov"
        self._emit(make(mnemonic, Reg(ret), self._slot(var)), var)

    def _pointee_access(self, ctype: PointerType) -> tuple[str, str, int, bool]:
        """(load mnemonic, store mnemonic, reg width, member-style) for a deref."""
        pointee = _strip_typedefs(ctype.pointee) if ctype.pointee is not None else None
        if pointee is None:
            return "mov", "mov", 8, False
        if isinstance(pointee, StructType):
            offsets = pointee.member_offsets()
            _, mtype, moff = self.rng.choice(offsets)
            width = min(_scalar_width(mtype), 8)
            mnem = "mov" + _WIDTH_SUFFIX[width] if width < 8 else "mov"
            self._member_disp = moff
            self._member_label = _strip_typedefs(mtype).leaf_label()
            return mnem, mnem, width, True
        if isinstance(pointee, ct.BaseType) and pointee.is_float:
            return ("movss", "movss", 16, False) if pointee.byte_size == 4 else ("movsd", "movsd", 16, False)
        width = min(pointee.size, 8)
        if width < 4 and isinstance(pointee, ct.BaseType):
            load = _EXT_LOAD[(width, pointee.is_signed)]
            return load, "mov" + _WIDTH_SUFFIX[width], width, False
        mnem = "mov" + _WIDTH_SUFFIX[width] if width < 8 else "mov"
        return mnem, mnem, width, False

    def _do_deref_load(self, access: Access) -> None:
        var = access.var
        ctype = _strip_typedefs(var.ctype)
        assert isinstance(ctype, PointerType)
        self._member_disp = 0
        load_mnem, _store, width, member = self._pointee_access(ctype)
        addr_reg = self._gp(8)
        self._emit(make("mov", self._slot(var), Reg(addr_reg)), var)
        disp = self._member_disp if member else 0
        field_truth = (disp, self._member_label) if member else None
        mem = Mem(disp=disp, base=addr_reg)
        if load_mnem in ("movss", "movsd"):
            self._emit(make(load_mnem, mem, Reg(self._sse())), var, member=field_truth)
        elif load_mnem.startswith(("movs", "movz")) and load_mnem not in ("movss", "movsd"):
            self._emit(make(load_mnem, mem, Reg(self._gp(4))), var, member=field_truth)
        else:
            self._emit(make(load_mnem, mem, Reg(self._gp(max(width, 4)))), var, member=field_truth)

    def _do_deref_store(self, access: Access) -> None:
        var = access.var
        ctype = _strip_typedefs(var.ctype)
        assert isinstance(ctype, PointerType)
        self._member_disp = 0
        _load, store_mnem, width, member = self._pointee_access(ctype)
        addr_reg = self._gp(8)
        self._emit(make("mov", self._slot(var), Reg(addr_reg)), var)
        disp = self._member_disp if member else 0
        field_truth = (disp, self._member_label) if member else None
        mem = Mem(disp=disp, base=addr_reg)
        if store_mnem in ("movss", "movsd"):
            self._emit(make(store_mnem, Reg(self._sse()), mem), var, member=field_truth)
        elif self.rng.random() < 0.5:
            self._emit(make(store_mnem, self._imm(small=True), mem), var, member=field_truth)
        else:
            reg_width = width if width < 8 else 8
            self._emit(make(store_mnem, Reg(self._gp(reg_width)), mem), var, member=field_truth)

    def _do_ptr_advance(self, access: Access) -> None:
        var = access.var
        ctype = _strip_typedefs(var.ctype)
        assert isinstance(ctype, PointerType)
        self._emit(make("addq", Imm(ctype.stride), self._slot(var)), var)

    def _do_addr_of(self, access: Access) -> None:
        var, target = access.var, access.partner
        assert target is not None
        reg = self._gp(8)
        self._emit(make("lea", self._slot(target), Reg(reg)), target)
        self._emit(make("mov", Reg(reg), self._slot(var)), var)

    def _member(self, var: LocalVar, member_index: int) -> tuple[CType, int]:
        ctype = _strip_typedefs(var.ctype)
        if isinstance(ctype, ArrayType):
            ctype = _strip_typedefs(ctype.element)
        assert isinstance(ctype, StructType)
        offsets = ctype.member_offsets()
        name_, mtype, moff = offsets[member_index % len(offsets)]
        return mtype, moff

    def _do_member_store(self, access: Access) -> None:
        var = access.var
        mtype, moff = self._member(var, access.member)
        mtype = _strip_typedefs(mtype)
        field_truth = (moff, mtype.leaf_label())
        width = min(_scalar_width(mtype), 8)
        if isinstance(mtype, ct.BaseType) and mtype.is_float:
            suffix = "ss" if mtype.byte_size == 4 else "sd"
            reg = self._sse()
            self._emit(make(f"mov{suffix}", Mem(disp=self.rng.randrange(0x1000, 0x8000), base="rip"), Reg(reg)))
            self._emit(make(f"mov{suffix}", Reg(reg), self._slot(var, extra=moff)), var, member=field_truth)
            return
        mnemonic = "mov" + _WIDTH_SUFFIX[width]
        if width == 8:
            mnemonic = "movq" if self.rng.random() < 0.5 else "mov"
        if mnemonic == "mov":
            self._emit(make("mov", Reg(self._gp(8)), self._slot(var, extra=moff)), var, member=field_truth)
        else:
            self._emit(make(mnemonic, self._imm(), self._slot(var, extra=moff)), var, member=field_truth)

    def _do_member_load(self, access: Access) -> None:
        var = access.var
        mtype, moff = self._member(var, access.member)
        mtype = _strip_typedefs(mtype)
        field_truth = (moff, mtype.leaf_label())
        width = min(_scalar_width(mtype), 8)
        if isinstance(mtype, ct.BaseType) and mtype.is_float:
            suffix = "ss" if mtype.byte_size == 4 else "sd"
            self._emit(make(f"mov{suffix}", self._slot(var, extra=moff), Reg(self._sse())), var, member=field_truth)
            return
        if width < 4 and isinstance(mtype, ct.BaseType):
            self._emit(make(_EXT_LOAD[(width, mtype.is_signed)], self._slot(var, extra=moff), Reg(self._gp(4))), var,
                       member=field_truth)
            return
        mnemonic = "mov" + _WIDTH_SUFFIX[width] if width < 8 else "mov"
        self._emit(make(mnemonic, self._slot(var, extra=moff), Reg(self._gp(max(width, 4)))), var,
                   member=field_truth)

    def _array_element(self, var: LocalVar) -> tuple[CType, int]:
        ctype = _strip_typedefs(var.ctype)
        assert isinstance(ctype, ArrayType)
        element = _strip_typedefs(ctype.element)
        return element, element.size

    def _do_array_store(self, access: Access) -> None:
        var = access.var
        element, esize = self._array_element(var)
        if isinstance(element, StructType) or esize > 8:
            # Non-scalable element: take the address, store through it.
            reg = self._gp(8)
            self._emit(make("lea", self._slot(var), Reg(reg)), var)
            self._emit(make("movl", self._imm(), Mem(disp=self.rng.choice((0, 4, 8)), base=reg)), var)
            return
        width = min(esize, 8)
        mnemonic = "mov" + _WIDTH_SUFFIX[width]
        info = self.slots[var.index]
        if self.rng.random() < 0.5:
            index_reg = self._gp(8)
            mem = Mem(disp=info.offset, base=self.style.frame_base, index=index_reg, scale=esize)
            self._emit(make(mnemonic, self._imm(small=True), mem), var)
        else:
            extra = self.rng.randrange(4) * esize
            self._emit(make(mnemonic, self._imm(small=True), self._slot(var, extra=extra)), var)

    def _do_array_load(self, access: Access) -> None:
        var = access.var
        element, esize = self._array_element(var)
        if isinstance(element, StructType) or esize > 8:
            reg = self._gp(8)
            self._emit(make("lea", self._slot(var), Reg(reg)), var)
            self._emit(make("mov", Mem(disp=self.rng.choice((0, 8)), base=reg), Reg(self._gp(8))), var)
            return
        width = min(esize, 8)
        info = self.slots[var.index]
        signed = isinstance(element, ct.BaseType) and element.is_signed
        if width < 4:
            mnemonic = _EXT_LOAD[(width, signed)]
            dest = Reg(self._gp(4))
        else:
            mnemonic = "mov" + _WIDTH_SUFFIX[width] if width < 8 else "mov"
            dest = Reg(self._gp(max(width, 4)))
        if self.rng.random() < 0.5:
            index_reg = self._gp(8)
            mem = Mem(disp=info.offset, base=self.style.frame_base, index=index_reg, scale=esize)
            self._emit(make(mnemonic, mem, dest), var)
        else:
            extra = self.rng.randrange(4) * esize
            self._emit(make(mnemonic, self._slot(var, extra=extra), dest), var)

    def _do_bool_set(self, access: Access) -> None:
        var = access.var
        reg32 = self._gp(4)
        from repro.asm.registers import register_family

        reg8 = gp_name(register_family(reg32), 1)
        self._emit(make("test", Reg(reg32), Reg(reg32)))
        self._emit(make(self.rng.choice(("sete", "setne", "setg", "setb")), Reg(reg8)))
        self._emit(make("movb", Reg(reg8), self._slot(var)), var)

    def _do_bool_test(self, access: Access) -> None:
        var = access.var
        reg32 = self._gp(4)
        from repro.asm.registers import register_family

        reg8 = gp_name(register_family(reg32), 1)
        self._emit(make("movzbl", self._slot(var), Reg(reg32)), var)
        self._emit(make("test", Reg(reg8), Reg(reg8)))
        self._emit(make(self.rng.choice(("je", "jne")), self._code_addr()))

    # -- fillers -------------------------------------------------------------------

    def lower_filler(self, filler: Filler) -> None:
        kind = filler.kind
        if kind is FillerKind.CALL:
            self._emit(make("callq", self._func_addr(named=False)))
        elif kind is FillerKind.CALL_NAMED:
            self._emit(make("callq", self._func_addr(named=True)))
        elif kind is FillerKind.JUMP:
            self._emit(make("jmp", self._code_addr()))
        elif kind is FillerKind.COND_JUMP:
            self._emit(make(self.rng.choice(("je", "jne", "jle", "ja")), self._code_addr()))
        elif kind is FillerKind.REG_MOVE:
            a, b = self._gp(8), self._gp(8)
            self._emit(make("mov", Reg(a), Reg(b)))
        elif kind is FillerKind.REG_ARITH:
            width = self.rng.choice((4, 8))
            a, b = self._gp(width), self._gp(width)
            self._emit(make(self.rng.choice(("add", "sub", "xor", "and")), Reg(a), Reg(b)))
        elif kind is FillerKind.REG_CMP:
            width = self.rng.choice((4, 8))
            a, b = self._gp(width), self._gp(width)
            self._emit(make("cmp", Reg(a), Reg(b)))
            self._emit(make(self.rng.choice(("je", "jne", "jg", "jb")), self._code_addr()))
        else:
            self._emit(make("nop"))

    # -- driver ----------------------------------------------------------------------

    def _prologue(self) -> None:
        if self.style.uses_endbr:
            self._emit(make("endbr64"))
        if self.style.frame_base == "rbp":
            self._emit(make("push", Reg("rbp")))
            self._emit(make("mov", Reg("rsp"), Reg("rbp")))
            self._emit(make("sub", Imm(self.frame_size), Reg("rsp")))
        else:
            self._emit(make("push", Reg("rbx")))
            self._emit(make("sub", Imm(self.frame_size), Reg("rsp")))

    def _epilogue(self) -> None:
        if self.style.zero_idiom == "xor":
            self._emit(make("xor", Reg("eax"), Reg("eax")))
        else:
            self._emit(make("movl", Imm(0), Reg("eax")))
        if self.style.epilogue == "leave":
            self._emit(make("leave"))
        else:
            self._emit(make("add", Imm(self.frame_size), Reg("rsp")))
            self._emit(make("pop", Reg("rbx" if self.style.frame_base == "rsp" else "rbp")))
        self._emit(make("retq"))

    def _spill_params(self) -> None:
        """Spill incoming register parameters into their frame slots.

        SysV argument registers are consumed in declaration order; only
        functions whose IR marks parameters (``LocalVar.is_param``) emit
        any spill, so generators with the knob off are bit-identical.
        """
        arg_pos = 0
        for var in self.func.locals:
            if not getattr(var, "is_param", False) or arg_pos >= len(self._ARG_GP):
                continue
            self._emit(make("mov", Reg(self._ARG_GP[arg_pos]), self._slot(var)), var)
            arg_pos += 1

    def lower(self) -> LoweredFunction:
        base = self.address
        self._prologue()
        self._spill_params()
        for event in self.func.events:
            if isinstance(event, Access):
                self.lower_access(event)
                if (event.kind in (AccessKind.STORE, AccessKind.INIT)
                        and self.rng.random() < self.style.redundant_load_prob
                        and event.var.label is not TypeName.LONG_DOUBLE):
                    self._load_to_reg(event.var)  # O0-style reload
            else:
                self.lower_filler(event)
        self._epilogue()
        listing = FunctionListing(name=self.func.name, address=base, instructions=self.instructions)
        return LoweredFunction(
            listing=listing,
            frame_base=self.style.frame_base,
            slots=self.slots,
            truth=self.truth,
            member_truth=self.member_truth,
        )


def lower_function(func: FunctionIR, style: CompilerStyle, rng: random.Random,
                   base_address: int) -> LoweredFunction:
    """Compile one function; see :class:`FunctionLowerer`."""
    return FunctionLowerer(func, style, rng, base_address).lower()
