"""Compiler drivers: tie the generator, the lowering and the debug-info
emitter together into a `compile this program` call.

Two concrete drivers model the two toolchains the paper studies:
:class:`GccCompiler` (the main corpus) and :class:`ClangCompiler`
(§VIII's transferability experiment).  Both accept ``-O0``..``-O3``
style optimization levels, which shift frame-base choice and the amount
of redundant memory traffic — the diversity knob the paper turns when it
builds each project at four optimization levels.
"""

from __future__ import annotations

import random

from repro.codegen.binary import Binary, build_debug_blob
from repro.codegen.lowering import CompilerStyle, clang_style, gcc_style, lower_function
from repro.codegen.progen import GeneratorConfig, ProgramIR, generate_program
from repro.core.errors import FailureReport, ToolchainError, handle_failure


class Compiler:
    """Base driver: compile a :class:`ProgramIR` into a :class:`Binary`."""

    name = "generic"

    def style(self, opt_level: int) -> CompilerStyle:
        raise NotImplementedError

    def compile(self, program: ProgramIR, opt_level: int = 0, seed: int = 0,
                on_error: str = "raise",
                failures: FailureReport | None = None) -> Binary:
        """Lower every function and assemble the binary + debug blob.

        Lowering is fault-isolated per function: with
        ``on_error="skip"``, a function the lowering cannot handle is
        recorded into ``failures`` (as a :class:`ToolchainError` with
        binary/function context) and omitted from the binary, mirroring
        how a real build keeps going past one bad translation unit.
        """
        if not 0 <= opt_level <= 3:
            raise ValueError(f"bad optimization level {opt_level}")
        rng = random.Random((seed, program.name, self.name, opt_level).__repr__())
        style = self.style(opt_level)
        address = 0x401000 + rng.randrange(0x1000)
        lowered = []
        for func in program.functions:
            try:
                result = lower_function(func, style, rng, address)
                if not result.listing.instructions:
                    raise ToolchainError(
                        "lowering produced an empty listing",
                        tool=self.name, stage="lower")
            except Exception as exc:
                handle_failure(exc, on_error=on_error, failures=failures,
                               stage="lower", binary=program.name,
                               function=getattr(func, "name", "?"))
                continue
            address = result.listing.instructions[-1].address + rng.randint(16, 64)
            lowered.append(result)
        debug = build_debug_blob(program.name, lowered)
        return Binary(
            name=program.name,
            compiler=self.name,
            opt_level=opt_level,
            functions=[lf.listing for lf in lowered],
            symtab={lf.listing.name: lf.listing.address for lf in lowered},
            debug=debug,
            lowered=lowered,
        )

    def compile_fresh(self, seed: int, name: str, opt_level: int = 0,
                      config: GeneratorConfig | None = None) -> Binary:
        """Generate a program and compile it in one step."""
        program = generate_program(seed, name, config)
        return self.compile(program, opt_level=opt_level, seed=seed)


class GccCompiler(Compiler):
    """GCC-convention codegen (rbp frames at low -O, rax-first scratch)."""

    name = "gcc"

    def style(self, opt_level: int) -> CompilerStyle:
        return gcc_style(opt_level)


class ClangCompiler(Compiler):
    """Clang-convention codegen (rsp-relative slots, rcx-first scratch)."""

    name = "clang"

    def style(self, opt_level: int) -> CompilerStyle:
        return clang_style(opt_level)


def compiler_by_name(name: str) -> Compiler:
    """Factory used by the dataset builder and the CLI examples."""
    compilers = {"gcc": GccCompiler, "clang": ClangCompiler}
    try:
        return compilers[name]()
    except KeyError:
        raise ValueError(f"unknown compiler {name!r}; expected gcc or clang") from None
