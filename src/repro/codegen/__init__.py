"""Synthetic compiler substrate.

Replaces the paper's corpus of 2141 GCC-built open-source binaries with a
deterministic pipeline: a seeded mini-C program generator
(:mod:`repro.codegen.progen`), a type-faithful x86-64 lowering
(:mod:`repro.codegen.lowering`) in GCC or Clang conventions
(:mod:`repro.codegen.compilers`), DWARF-like debug emission
(:mod:`repro.codegen.binary`) and stripping (:mod:`repro.codegen.strip`).
See DESIGN.md §2 for why this substitution preserves the experiments.
"""

from repro.codegen.binary import Binary, VariableRecord, debug_variables
from repro.codegen.compilers import ClangCompiler, Compiler, GccCompiler, compiler_by_name
from repro.codegen.ctypes_model import (
    ArrayType,
    BaseType,
    CType,
    EnumType,
    PointerType,
    StructType,
    TypedefType,
)
from repro.codegen.progen import GeneratorConfig, ProgramIR, generate_program
from repro.codegen.strip import strip

__all__ = [
    "Binary",
    "VariableRecord",
    "debug_variables",
    "ClangCompiler",
    "Compiler",
    "GccCompiler",
    "compiler_by_name",
    "ArrayType",
    "BaseType",
    "CType",
    "EnumType",
    "PointerType",
    "StructType",
    "TypedefType",
    "GeneratorConfig",
    "ProgramIR",
    "generate_program",
    "strip",
]
