"""Strip a binary: discard debug information and symbol names.

Models what ``strip`` does to COTS binaries — the debug blob disappears,
local symbol names disappear, and only PLT-style import names survive
(which is why the generalizer can still see ``<memchr@plt>`` in real
stripped binaries; §IV-B).
"""

from __future__ import annotations

from dataclasses import replace

from repro.asm.instruction import FunctionListing, Instruction
from repro.asm.operands import Label
from repro.codegen.binary import Binary


def strip(binary: Binary) -> Binary:
    """Return a stripped copy: no debug blob, no local symbols, no truth.

    Call-target symbols that do not look like PLT imports are removed
    from instruction operands as well, since objdump resolves those from
    the (now deleted) symbol table.
    """
    functions = [_strip_listing(func, index) for index, func in enumerate(binary.functions)]
    return Binary(
        name=binary.name,
        compiler=binary.compiler,
        opt_level=binary.opt_level,
        functions=functions,
        symtab={},
        debug=None,
        lowered=[],
    )


def _strip_listing(func: FunctionListing, index: int) -> FunctionListing:
    instructions = [_strip_instruction(ins) for ins in func.instructions]
    return FunctionListing(
        name=f"sub_{func.address:x}",
        address=func.address,
        instructions=instructions,
    )


def _strip_instruction(ins: Instruction) -> Instruction:
    """Drop non-PLT symbols from label operands."""
    new_operands = []
    changed = False
    for op in ins.operands:
        if isinstance(op, Label) and op.symbol is not None and "@plt" not in op.symbol:
            new_operands.append(replace(op, symbol=None))
            changed = True
        else:
            new_operands.append(op)
    if not changed:
        return ins
    return Instruction(mnemonic=ins.mnemonic, operands=tuple(new_operands), address=ins.address)
