"""The :class:`Binary` artifact produced by the synthetic compiler.

A binary bundles the disassembly-level view (function listings), the
symbol table and — unless stripped — an encoded DWARF-like debug blob
carrying variable names, frame locations and full type DIE graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.instruction import FunctionListing, Instruction
from repro.codegen.lowering import LoweredFunction
from repro.dwarf import DebugBlob, decode, dies, encode
from repro.dwarf.dies import Attr, Die, Tag


@dataclass
class Binary:
    """One compiled object: listings + symtab + optional debug blob."""

    name: str
    compiler: str
    opt_level: int
    functions: list[FunctionListing]
    symtab: dict[str, int] = field(default_factory=dict)
    debug: DebugBlob | None = None
    #: Generator-side truth, present only on freshly built binaries; used
    #: by validation tests, never by the inference pipeline.
    lowered: list[LoweredFunction] = field(default_factory=list)

    @property
    def is_stripped(self) -> bool:
        return self.debug is None

    def instruction_count(self) -> int:
        return sum(len(f) for f in self.functions)

    def all_instructions(self) -> list[Instruction]:
        out: list[Instruction] = []
        for func in self.functions:
            out.extend(func.instructions)
        return out

    def debug_tree(self) -> Die:
        """Decode the debug blob back into a DIE tree."""
        if self.debug is None:
            raise ValueError(f"binary {self.name!r} is stripped")
        return decode(self.debug)

    def render(self) -> str:
        """objdump-style text of the whole binary."""
        return "\n\n".join(func.render() for func in self.functions)


def build_debug_blob(name: str, lowered: list[LoweredFunction]) -> DebugBlob:
    """Emit the compile-unit DIE tree for a set of lowered functions.

    Every local gets a DW_TAG_variable DIE whose location is the literal
    frame displacement its instructions use, and whose type reference is
    the full DIE graph (typedef chains intact) built from the CType.
    """
    cu = dies.compile_unit(name)
    type_cache: dict = {}
    for func in lowered:
        sub = cu.add(dies.subprogram(func.listing.name, func.listing.address))
        for slot in func.slots.values():
            type_die = slot.var.ctype.to_die(type_cache)
            sub.add(dies.variable(slot.var.name, type_die, slot.offset))
    # Hang shared type DIEs off the CU so references stay inside the tree.
    seen = {id(d) for d in cu.walk()}
    for type_die in type_cache.values():
        for die in type_die.walk():
            pass  # ensure structure is materialized
        if id(type_die) not in seen:
            cu.children.append(type_die)
            seen.update(id(d) for d in type_die.walk())
    return encode(cu)


@dataclass(frozen=True)
class VariableRecord:
    """Ground truth for one variable, recovered from the debug blob."""

    function: str
    name: str
    frame_offset: int
    size: int
    type_label: "object"  # TypeName; typed loosely to avoid import cycle


def debug_variables(binary: Binary) -> list[VariableRecord]:
    """Decode a binary's debug blob into per-variable ground truth.

    This is the reproduction of the paper's DWARF labeling step (§IV-A):
    DIE tree → subprogram → variable → recursively resolved type.
    """
    from repro.dwarf.resolver import UnresolvableType, resolve_type

    cu = binary.debug_tree()
    out: list[VariableRecord] = []
    for sub in cu.find_all(Tag.SUBPROGRAM):
        func_name = sub.name or "?"
        for child in sub.children:
            if child.tag is not Tag.VARIABLE:
                continue
            type_die = child.type_ref
            try:
                label = resolve_type(type_die)
            except UnresolvableType:
                continue
            size = _die_size(type_die)
            location = child.location
            if location is None:
                continue
            out.append(VariableRecord(
                function=func_name,
                name=child.name or "?",
                frame_offset=location,
                size=size,
                type_label=label,
            ))
    return out


def _die_size(die: Die | None) -> int:
    """Storage size of a type DIE, following typedef/qualifier chains."""
    for _ in range(64):
        if die is None:
            return 8
        size = die.byte_size
        if size is not None:
            return size
        if die.tag in (Tag.TYPEDEF, Tag.CONST_TYPE, Tag.VOLATILE_TYPE, Tag.ARRAY_TYPE):
            die = die.type_ref
            continue
        if die.tag is Tag.POINTER_TYPE:
            return 8
        return 8
    return 8
