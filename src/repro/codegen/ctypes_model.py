"""C type system model used by the synthetic program generator.

Mirrors the C99 types the paper recovers.  Every :class:`CType` knows its
x86-64 SysV size/alignment, its 19-type leaf label, and how to emit the
DWARF DIE graph describing it (typedef chains included, so the resolver's
recursive-peeling path (§IV-A) is exercised by the main pipeline, not
just by unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.types import TypeName
from repro.dwarf import dies
from repro.dwarf.dies import Die, Encoding


@dataclass(frozen=True)
class CType:
    """Base class for C types."""

    def leaf_label(self) -> TypeName:
        raise NotImplementedError

    @property
    def size(self) -> int:
        raise NotImplementedError

    @property
    def align(self) -> int:
        return min(self.size, 16)

    def to_die(self, cache: dict["CType", Die]) -> Die:
        """Build (and memoize) the DIE graph for this type."""
        die = cache.get(self)
        if die is None:
            die = self._build_die(cache)
            cache[self] = die
        return die

    def _build_die(self, cache: dict["CType", Die]) -> Die:
        raise NotImplementedError


@dataclass(frozen=True)
class BaseType(CType):
    """A C base type: ``int``, ``double``, ``_Bool``, ..."""

    name: str
    byte_size: int
    encoding: Encoding

    def leaf_label(self) -> TypeName:
        return _BASE_LABELS[self.name]

    @property
    def size(self) -> int:
        return self.byte_size

    @property
    def is_float(self) -> bool:
        return self.encoding is Encoding.FLOAT

    @property
    def is_signed(self) -> bool:
        return self.encoding in (Encoding.SIGNED, Encoding.SIGNED_CHAR)

    def _build_die(self, cache: dict[CType, Die]) -> Die:
        return dies.base_type(self.name, self.byte_size, self.encoding)


@dataclass(frozen=True)
class EnumType(CType):
    """An enumeration; 4 bytes on x86-64."""

    name: str

    def leaf_label(self) -> TypeName:
        return TypeName.ENUM

    @property
    def size(self) -> int:
        return 4

    def _build_die(self, cache: dict[CType, Die]) -> Die:
        return dies.enum_type(self.name, 4)


@dataclass(frozen=True)
class StructType(CType):
    """A structure with named, typed members laid out SysV-style."""

    name: str
    members: tuple[tuple[str, "CType"], ...]

    def leaf_label(self) -> TypeName:
        return TypeName.STRUCT

    @property
    def size(self) -> int:
        offset = 0
        max_align = 1
        for _, mtype in self.members:
            align = mtype.align
            max_align = max(max_align, align)
            offset = _round_up(offset, align) + mtype.size
        return _round_up(max(offset, 1), max_align)

    def member_offsets(self) -> tuple[tuple[str, "CType", int], ...]:
        """(name, type, byte offset) for each member."""
        out = []
        offset = 0
        for mname, mtype in self.members:
            offset = _round_up(offset, mtype.align)
            out.append((mname, mtype, offset))
            offset += mtype.size
        return tuple(out)

    def _build_die(self, cache: dict[CType, Die]) -> Die:
        member_dies = [(mname, mtype.to_die(cache), moff)
                       for mname, mtype, moff in self.member_offsets()]
        return dies.struct_type(self.name, self.size, member_dies)


@dataclass(frozen=True)
class PointerType(CType):
    """A pointer; ``pointee=None`` means ``void*``."""

    pointee: "CType | None"

    def leaf_label(self) -> TypeName:
        if self.pointee is None:
            return TypeName.VOID_POINTER
        target = self.pointee
        while isinstance(target, TypedefType):
            target = target.target
        if isinstance(target, ArrayType):
            target = target.element
        if isinstance(target, StructType):
            return TypeName.STRUCT_POINTER
        if isinstance(target, (BaseType, EnumType)):
            return TypeName.ARITH_POINTER
        return TypeName.VOID_POINTER

    @property
    def size(self) -> int:
        return 8

    @property
    def stride(self) -> int:
        """Element stride for pointer arithmetic (1 for void*)."""
        return self.pointee.size if self.pointee is not None else 1

    def _build_die(self, cache: dict[CType, Die]) -> Die:
        target = self.pointee.to_die(cache) if self.pointee is not None else None
        return dies.pointer_to(target)


@dataclass(frozen=True)
class ArrayType(CType):
    """A fixed-size array; labeled by element type (see resolver)."""

    element: "CType"
    count: int

    def leaf_label(self) -> TypeName:
        return self.element.leaf_label()

    @property
    def size(self) -> int:
        return self.element.size * self.count

    @property
    def align(self) -> int:
        return self.element.align

    def _build_die(self, cache: dict[CType, Die]) -> Die:
        return dies.array_of(self.element.to_die(cache), self.count)


@dataclass(frozen=True)
class TypedefType(CType):
    """A typedef alias; resolves transparently (``size_t`` → ulong)."""

    name: str
    target: "CType"

    def leaf_label(self) -> TypeName:
        return self.target.leaf_label()

    @property
    def size(self) -> int:
        return self.target.size

    @property
    def align(self) -> int:
        return self.target.align

    def _build_die(self, cache: dict[CType, Die]) -> Die:
        return dies.typedef(self.name, self.target.to_die(cache))


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


# -- the canonical instances ---------------------------------------------------

BOOL = BaseType("_Bool", 1, Encoding.BOOLEAN)
CHAR = BaseType("char", 1, Encoding.SIGNED_CHAR)
UCHAR = BaseType("unsigned char", 1, Encoding.UNSIGNED_CHAR)
SHORT = BaseType("short int", 2, Encoding.SIGNED)
USHORT = BaseType("short unsigned int", 2, Encoding.UNSIGNED)
INT = BaseType("int", 4, Encoding.SIGNED)
UINT = BaseType("unsigned int", 4, Encoding.UNSIGNED)
LONG = BaseType("long int", 8, Encoding.SIGNED)
ULONG = BaseType("long unsigned int", 8, Encoding.UNSIGNED)
LONGLONG = BaseType("long long int", 8, Encoding.SIGNED)
ULONGLONG = BaseType("long long unsigned int", 8, Encoding.UNSIGNED)
FLOAT = BaseType("float", 4, Encoding.FLOAT)
DOUBLE = BaseType("double", 8, Encoding.FLOAT)
LONG_DOUBLE = BaseType("long double", 16, Encoding.FLOAT)

_BASE_LABELS: dict[str, TypeName] = {
    "_Bool": TypeName.BOOL,
    "char": TypeName.CHAR,
    "unsigned char": TypeName.UNSIGNED_CHAR,
    "short int": TypeName.SHORT_INT,
    "short unsigned int": TypeName.SHORT_UNSIGNED_INT,
    "int": TypeName.INT,
    "unsigned int": TypeName.UNSIGNED_INT,
    "long int": TypeName.LONG_INT,
    "long unsigned int": TypeName.LONG_UNSIGNED_INT,
    "long long int": TypeName.LONG_LONG_INT,
    "long long unsigned int": TypeName.LONG_LONG_UNSIGNED_INT,
    "float": TypeName.FLOAT,
    "double": TypeName.DOUBLE,
    "long double": TypeName.LONG_DOUBLE,
}

#: Common typedefs projects actually use; exercise the resolver's chains.
SIZE_T = TypedefType("size_t", ULONG)
SSIZE_T = TypedefType("ssize_t", LONG)
UINT32_T = TypedefType("uint32_t", UINT)
INT64_T = TypedefType("int64_t", LONG)
UINT8_T = TypedefType("uint8_t", UCHAR)
BYTE_T = TypedefType("byte", UINT8_T)  # two-level chain

#: A small zoo of struct shapes the generator samples from.
def make_struct_zoo() -> tuple[StructType, ...]:
    """Struct shapes spanning small/large, pointer-heavy and scalar-heavy."""
    node = StructType("node", (("next", PointerType(None)), ("value", INT)))
    pair = StructType("attr_pair", (("key", PointerType(CHAR)), ("val", PointerType(CHAR))))
    stat = StructType(
        "stats",
        (("count", ULONG), ("total", DOUBLE), ("min", INT), ("max", INT)),
    )
    buf = StructType(
        "buffer",
        (("data", PointerType(CHAR)), ("len", SIZE_T), ("cap", SIZE_T), ("flags", UINT)),
    )
    opts = StructType(
        "options",
        (("verbose", BOOL), ("level", INT), ("name", PointerType(CHAR)), ("limit", LONG)),
    )
    return (node, pair, stat, buf, opts)


#: Leaf label → a representative concrete CType used by generators that
#: need to materialize a variable of a given label.
def representative(label: TypeName) -> CType:
    mapping: dict[TypeName, CType] = {
        TypeName.BOOL: BOOL,
        TypeName.CHAR: CHAR,
        TypeName.UNSIGNED_CHAR: UCHAR,
        TypeName.SHORT_INT: SHORT,
        TypeName.SHORT_UNSIGNED_INT: USHORT,
        TypeName.INT: INT,
        TypeName.UNSIGNED_INT: UINT,
        TypeName.LONG_INT: LONG,
        TypeName.LONG_UNSIGNED_INT: ULONG,
        TypeName.LONG_LONG_INT: LONGLONG,
        TypeName.LONG_LONG_UNSIGNED_INT: ULONGLONG,
        TypeName.FLOAT: FLOAT,
        TypeName.DOUBLE: DOUBLE,
        TypeName.LONG_DOUBLE: LONG_DOUBLE,
        TypeName.ENUM: EnumType("state_t"),
        TypeName.STRUCT: make_struct_zoo()[2],
        TypeName.VOID_POINTER: PointerType(None),
        TypeName.STRUCT_POINTER: PointerType(make_struct_zoo()[0]),
        TypeName.ARITH_POINTER: PointerType(INT),
    }
    return mapping[label]
